//! `scd-wire` — the delta wire-format subsystem.
//!
//! The paper's distributed rounds (Algorithm 3, §V) ship one dense f32
//! shared-vector delta per worker per round over 10 GbE, and on the
//! datasets studied that reduce/broadcast traffic is what caps scaling
//! (Fig. 9's communication share; Keuper & Pfreundt, arXiv:1505.04956).
//! This crate defines the codec boundary the distributed layer ships
//! deltas through, so the byte count the network model charges — and the
//! numerics the master aggregates — can trade precision for bandwidth:
//!
//! * [`RawF32`] — today's behaviour, bit-identical roundtrip, 4 B/entry;
//! * [`Fp16`] — round-to-nearest-even binary16, 2 B/entry, ≤ 2⁻¹¹
//!   relative error on the half normal range;
//! * [`TopK`] — keep the k largest-magnitude entries as (u32 index,
//!   f32 value) pairs with deterministic lower-index tie-breaking;
//! * [`TopKEf`] — [`TopK`] wrapped with a per-worker **error-feedback
//!   residual**: the mass a round drops is carried into the next round's
//!   encode (`e ← (Δ + e) − decode(encode(Δ + e))`), which is what keeps
//!   sparsified SCD converging to the dense solution.
//!
//! Encode and decode are deterministic: the same delta (and, for
//! [`TopKEf`], the same residual history) always produces the same
//! payload and the same decoded vector, so distributed runs stay
//! reproducible under any codec.

pub mod fp16;
pub mod topk;

pub use fp16::{f16_bits_to_f32, f32_to_f16_bits, round_through_f16};
pub use topk::{top_k_indices, top_k_indices_into};

/// Bytes of the header on a sparse payload (u32 length + u32 pair count).
pub const SPARSE_HEADER_BYTES: usize = 8;
/// Bytes per sparse (u32 index, f32 value) pair.
pub const SPARSE_ENTRY_BYTES: usize = 8;

/// One encoded delta as it would travel on the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum WirePayload {
    /// Dense little-endian f32, 4 B/entry.
    F32(Vec<f32>),
    /// Dense binary16, 2 B/entry.
    F16(Vec<u16>),
    /// Sparse (index, value) pairs over a vector of `len` entries.
    /// Indices are strictly increasing — the canonical order.
    Sparse {
        /// Length of the dense vector the pairs index into.
        len: usize,
        /// Strictly increasing entry indices.
        idx: Vec<u32>,
        /// Values at `idx`, kept in full f32.
        val: Vec<f32>,
    },
}

impl Default for WirePayload {
    /// An empty dense-f32 payload — the natural seed for a reusable
    /// encode buffer (no allocation until the first `encode_into`).
    fn default() -> Self {
        WirePayload::F32(Vec::new())
    }
}

impl WirePayload {
    /// Bytes this payload occupies on the wire. Sparse payloads pay a
    /// [`SPARSE_HEADER_BYTES`] header plus [`SPARSE_ENTRY_BYTES`] per
    /// pair — the index overhead is charged, not hidden.
    pub fn encoded_bytes(&self) -> usize {
        match self {
            WirePayload::F32(v) => 4 * v.len(),
            WirePayload::F16(v) => 2 * v.len(),
            WirePayload::Sparse { idx, .. } => {
                SPARSE_HEADER_BYTES + SPARSE_ENTRY_BYTES * idx.len()
            }
        }
    }

    /// Bytes of the dense f32 encoding of the same vector.
    pub fn raw_bytes(&self) -> usize {
        match self {
            WirePayload::F32(v) => 4 * v.len(),
            WirePayload::F16(v) => 4 * v.len(),
            WirePayload::Sparse { len, .. } => 4 * len,
        }
    }
}

/// A deterministic encoder/decoder for shared-vector deltas.
///
/// `encode` takes the worker id because stateful codecs ([`TopKEf`]) keep
/// per-worker residuals; stateless codecs ignore it. `decode` is pure.
pub trait DeltaCodec: Send {
    /// The format this codec implements.
    fn format(&self) -> WireFormat;

    /// Encode `delta`, committing any per-worker codec state.
    fn encode(&mut self, worker: usize, delta: &[f32]) -> WirePayload;

    /// [`Self::encode`] into a reusable payload — identical payload and
    /// state commits, but when `out` already holds this codec's variant
    /// its buffers are recycled, so steady-state encodes stop
    /// allocating. The provided impl falls back to the allocating form;
    /// the codecs in this crate all override it.
    fn encode_into(&mut self, worker: usize, delta: &[f32], out: &mut WirePayload) {
        *out = self.encode(worker, delta);
    }

    /// Decode a payload back to a dense delta.
    fn decode(&self, payload: &WirePayload) -> Vec<f32> {
        let mut out = Vec::new();
        self.decode_into(payload, &mut out);
        out
    }

    /// [`Self::decode`] into a caller-owned buffer (cleared and
    /// refilled) — bit-identical to [`Self::decode`], allocation-free
    /// once `out`'s capacity has grown to the dense length.
    fn decode_into(&self, payload: &WirePayload, out: &mut Vec<f32>) {
        out.clear();
        match payload {
            WirePayload::F32(v) => out.extend_from_slice(v),
            WirePayload::F16(v) => out.extend(v.iter().map(|&h| f16_bits_to_f32(h))),
            WirePayload::Sparse { len, idx, val } => {
                out.resize(*len, 0.0);
                for (&i, &x) in idx.iter().zip(val) {
                    out[i as usize] = x;
                }
            }
        }
    }

    /// Wire bytes of one worker's encoded upload of a `len`-entry delta.
    /// Sizes are value-independent, so accounting never needs a payload.
    fn upload_bytes(&self, len: usize) -> usize {
        self.format().upload_bytes(len)
    }

    /// Wire bytes of the master's broadcast of the aggregated delta to
    /// one worker after `survivors` uploads were merged.
    fn broadcast_bytes(&self, len: usize, survivors: usize) -> usize {
        self.format().broadcast_bytes(len, survivors)
    }
}

/// Identity codec: ships the dense f32 delta unchanged (the pre-codec
/// behaviour, bit-identical end to end).
#[derive(Debug, Clone, Default)]
pub struct RawF32;

impl DeltaCodec for RawF32 {
    fn format(&self) -> WireFormat {
        WireFormat::Raw
    }

    fn encode(&mut self, _worker: usize, delta: &[f32]) -> WirePayload {
        WirePayload::F32(delta.to_vec())
    }

    fn encode_into(&mut self, _worker: usize, delta: &[f32], out: &mut WirePayload) {
        match out {
            WirePayload::F32(v) => {
                v.clear();
                v.extend_from_slice(delta);
            }
            other => *other = WirePayload::F32(delta.to_vec()),
        }
    }
}

/// Dense binary16 codec (round-to-nearest-even), halving the payload at
/// ≤ 2⁻¹¹ relative error per entry.
#[derive(Debug, Clone, Default)]
pub struct Fp16;

impl DeltaCodec for Fp16 {
    fn format(&self) -> WireFormat {
        WireFormat::Fp16
    }

    fn encode(&mut self, _worker: usize, delta: &[f32]) -> WirePayload {
        WirePayload::F16(delta.iter().map(|&x| f32_to_f16_bits(x)).collect())
    }

    fn encode_into(&mut self, _worker: usize, delta: &[f32], out: &mut WirePayload) {
        let halves = delta.iter().map(|&x| f32_to_f16_bits(x));
        match out {
            WirePayload::F16(v) => {
                v.clear();
                v.extend(halves);
            }
            other => *other = WirePayload::F16(halves.collect()),
        }
    }
}

/// Rebuild `out` as a sparse payload over `dense_len` entries from the
/// selected `keep` indices into `values`, recycling its index/value
/// buffers when `out` is already sparse.
fn fill_sparse(out: &mut WirePayload, dense_len: usize, keep: &[usize], values: &[f32]) {
    if !matches!(out, WirePayload::Sparse { .. }) {
        *out = WirePayload::Sparse {
            len: 0,
            idx: Vec::new(),
            val: Vec::new(),
        };
    }
    if let WirePayload::Sparse { len, idx, val } = out {
        *len = dense_len;
        idx.clear();
        val.clear();
        idx.extend(keep.iter().map(|&i| i as u32));
        val.extend(keep.iter().map(|&i| values[i]));
    }
}

/// Top-k magnitude sparsification: exactly `min(k, len)` pairs per
/// payload, largest magnitudes first in selection, lower index on ties,
/// emitted in index order. Dropped mass is *lost* — see [`TopKEf`] for
/// the convergence-preserving variant.
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    /// Selection scratch, recycled across encodes.
    scratch: Vec<usize>,
}

impl TopK {
    /// Keep the `k` largest-magnitude entries per delta (`k >= 1`).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "top-k needs k >= 1");
        TopK {
            k,
            scratch: Vec::new(),
        }
    }
}

impl DeltaCodec for TopK {
    fn format(&self) -> WireFormat {
        WireFormat::TopK(self.k)
    }

    fn encode(&mut self, worker: usize, delta: &[f32]) -> WirePayload {
        let mut out = WirePayload::F32(Vec::new());
        self.encode_into(worker, delta, &mut out);
        out
    }

    fn encode_into(&mut self, _worker: usize, delta: &[f32], out: &mut WirePayload) {
        top_k_indices_into(delta, self.k, &mut self.scratch);
        fill_sparse(out, delta.len(), &self.scratch, delta);
    }
}

/// [`TopK`] with per-worker error-feedback residual state.
///
/// Each worker's dropped mass is remembered and added into its next
/// round's delta before selection:
///
/// ```text
/// c_t = Δ_t + e_t            (compensate)
/// p_t = topk(c_t)            (encode; what the master decodes)
/// e_{t+1} = c_t − decode(p_t) (carry the dropped mass forward)
/// ```
///
/// Because top-k ships selected values in full f32, the residual is
/// exactly `c_t` outside the selected support and exactly zero on it —
/// no quantization error accumulates, only deferral.
pub struct TopKEf {
    k: usize,
    /// Residual per worker id, sized lazily on first encode.
    residuals: Vec<Vec<f32>>,
    /// Selection scratch, recycled across encodes.
    scratch: Vec<usize>,
}

impl TopKEf {
    /// Keep `k` entries per round, deferring the rest (`k >= 1`).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "top-k needs k >= 1");
        TopKEf {
            k,
            residuals: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// The residual currently held for `worker` (None before its first
    /// encode). Exposed for tests and telemetry.
    pub fn residual(&self, worker: usize) -> Option<&[f32]> {
        self.residuals
            .get(worker)
            .filter(|r| !r.is_empty())
            .map(|r| r.as_slice())
    }
}

impl DeltaCodec for TopKEf {
    fn format(&self) -> WireFormat {
        WireFormat::TopKEf(self.k)
    }

    fn encode(&mut self, worker: usize, delta: &[f32]) -> WirePayload {
        let mut out = WirePayload::F32(Vec::new());
        self.encode_into(worker, delta, &mut out);
        out
    }

    fn encode_into(&mut self, worker: usize, delta: &[f32], out: &mut WirePayload) {
        if self.residuals.len() <= worker {
            self.residuals.resize_with(worker + 1, Vec::new);
        }
        let resid = &mut self.residuals[worker];
        if resid.len() != delta.len() {
            resid.clear();
            resid.resize(delta.len(), 0.0);
        }
        // Compensate, select, and keep the dropped mass as the residual.
        for (r, &d) in resid.iter_mut().zip(delta) {
            *r += d;
        }
        top_k_indices_into(resid, self.k, &mut self.scratch);
        fill_sparse(out, delta.len(), &self.scratch, resid);
        for &i in &self.scratch {
            resid[i] = 0.0;
        }
    }
}

/// The wire format selected on a command line or a config — the parsed
/// form of `--wire {raw,fp16,topk:<k>,topk-ef:<k>}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireFormat {
    /// Dense f32, bit-identical (the default).
    #[default]
    Raw,
    /// Dense binary16.
    Fp16,
    /// Top-k sparsification, mass dropped.
    TopK(usize),
    /// Top-k sparsification with per-worker error feedback.
    TopKEf(usize),
}

impl WireFormat {
    /// Parse `raw`, `fp16`, `topk:<k>`, or `topk-ef:<k>`.
    pub fn parse(s: &str) -> Result<WireFormat, String> {
        let bad_k = |spec: &str| {
            format!("--wire {spec}: k must be a positive integer (e.g. {spec}:64)")
        };
        match s {
            "raw" => Ok(WireFormat::Raw),
            "fp16" => Ok(WireFormat::Fp16),
            _ => {
                if let Some(k) = s.strip_prefix("topk-ef:") {
                    let k: usize = k.parse().map_err(|_| bad_k("topk-ef"))?;
                    if k == 0 {
                        return Err(bad_k("topk-ef"));
                    }
                    Ok(WireFormat::TopKEf(k))
                } else if let Some(k) = s.strip_prefix("topk:") {
                    let k: usize = k.parse().map_err(|_| bad_k("topk"))?;
                    if k == 0 {
                        return Err(bad_k("topk"));
                    }
                    Ok(WireFormat::TopK(k))
                } else {
                    Err(format!(
                        "unknown wire format {s:?} (raw|fp16|topk:<k>|topk-ef:<k>)"
                    ))
                }
            }
        }
    }

    /// The canonical label (`parse(label())` roundtrips).
    pub fn label(&self) -> String {
        match self {
            WireFormat::Raw => "raw".to_string(),
            WireFormat::Fp16 => "fp16".to_string(),
            WireFormat::TopK(k) => format!("topk:{k}"),
            WireFormat::TopKEf(k) => format!("topk-ef:{k}"),
        }
    }

    /// Stand up a codec for this format.
    pub fn codec(&self) -> Box<dyn DeltaCodec> {
        match *self {
            WireFormat::Raw => Box::new(RawF32),
            WireFormat::Fp16 => Box::new(Fp16),
            WireFormat::TopK(k) => Box::new(TopK::new(k)),
            WireFormat::TopKEf(k) => Box::new(TopKEf::new(k)),
        }
    }

    /// True when decode(encode(x)) == x bitwise for every input.
    pub fn is_lossless(&self) -> bool {
        matches!(self, WireFormat::Raw)
    }

    /// Wire bytes of one worker's upload of a `len`-entry delta. Sparse
    /// formats fall back to the dense f32 frame when the pair encoding
    /// would be larger (a real sender would, too).
    pub fn upload_bytes(&self, len: usize) -> usize {
        match *self {
            WireFormat::Raw => 4 * len,
            WireFormat::Fp16 => 2 * len,
            WireFormat::TopK(k) | WireFormat::TopKEf(k) => {
                (SPARSE_HEADER_BYTES + SPARSE_ENTRY_BYTES * k.min(len)).min(4 * len)
            }
        }
    }

    /// Wire bytes of the master's broadcast of the aggregated delta to
    /// one worker after `survivors` uploads were merged. For sparse
    /// formats the aggregate's support is the union of the survivors'
    /// supports (at most `survivors * k` pairs), which the master can
    /// ship losslessly; dense formats re-ship the dense frame.
    pub fn broadcast_bytes(&self, len: usize, survivors: usize) -> usize {
        match *self {
            WireFormat::Raw => 4 * len,
            WireFormat::Fp16 => 2 * len,
            WireFormat::TopK(k) | WireFormat::TopKEf(k) => {
                let pairs = (k.saturating_mul(survivors)).min(len);
                (SPARSE_HEADER_BYTES + SPARSE_ENTRY_BYTES * pairs).min(4 * len)
            }
        }
    }
}

impl std::fmt::Display for WireFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_label_roundtrip() {
        for s in ["raw", "fp16", "topk:64", "topk-ef:8"] {
            let f = WireFormat::parse(s).unwrap();
            assert_eq!(f.label(), s);
            assert_eq!(WireFormat::parse(&f.label()).unwrap(), f);
        }
        assert!(WireFormat::parse("topk:0").is_err());
        assert!(WireFormat::parse("topk-ef:x").is_err());
        assert!(WireFormat::parse("zstd").is_err());
        assert_eq!(WireFormat::default(), WireFormat::Raw);
        assert!(WireFormat::Raw.is_lossless());
        assert!(!WireFormat::Fp16.is_lossless());
        assert_eq!(format!("{}", WireFormat::TopK(4)), "topk:4");
    }

    #[test]
    fn raw_roundtrip_is_bit_identical() {
        let delta = vec![1.0f32, -0.0, 3.5e-20, f32::MIN_POSITIVE, -7.25];
        let mut codec = RawF32;
        let p = codec.encode(0, &delta);
        let back = codec.decode(&p);
        assert_eq!(delta.len(), back.len());
        for (a, b) in delta.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(p.encoded_bytes(), 4 * delta.len());
        assert_eq!(p.raw_bytes(), p.encoded_bytes());
    }

    #[test]
    fn fp16_halves_bytes() {
        let delta = vec![0.5f32; 100];
        let mut codec = Fp16;
        let p = codec.encode(0, &delta);
        assert_eq!(p.encoded_bytes(), 200);
        assert_eq!(p.raw_bytes(), 400);
        assert_eq!(codec.decode(&p), delta, "0.5 is exactly representable");
    }

    #[test]
    fn topk_keeps_exactly_k_and_decodes_sparsely() {
        let delta = vec![0.1f32, -5.0, 0.2, 4.0, -0.3, 0.0];
        let mut codec = TopK::new(2);
        let p = codec.encode(0, &delta);
        match &p {
            WirePayload::Sparse { len, idx, val } => {
                assert_eq!(*len, 6);
                assert_eq!(idx, &[1, 3]);
                assert_eq!(val, &[-5.0, 4.0]);
            }
            other => panic!("expected sparse payload, got {other:?}"),
        }
        assert_eq!(p.encoded_bytes(), SPARSE_HEADER_BYTES + 2 * SPARSE_ENTRY_BYTES);
        assert_eq!(codec.decode(&p), vec![0.0, -5.0, 0.0, 4.0, 0.0, 0.0]);
    }

    #[test]
    fn topk_ef_carries_dropped_mass_forward() {
        let mut codec = TopKEf::new(1);
        let d1 = vec![3.0f32, 1.0, -2.0];
        let p1 = codec.encode(0, &d1);
        assert_eq!(codec.decode(&p1), vec![3.0, 0.0, 0.0]);
        assert_eq!(codec.residual(0).unwrap(), &[0.0, 1.0, -2.0]);
        // Next round: residual compensates before selection. -2 + -2 = -4
        // now outranks the fresh 3.0.
        let d2 = vec![3.0f32, 0.5, -2.0];
        let p2 = codec.encode(0, &d2);
        assert_eq!(codec.decode(&p2), vec![0.0, 0.0, -4.0]);
        assert_eq!(codec.residual(0).unwrap(), &[3.0, 1.5, 0.0]);
        // Other workers keep independent residuals.
        assert!(codec.residual(1).is_none());
        codec.encode(1, &[1.0, 0.0]);
        assert_eq!(codec.residual(1).unwrap(), &[0.0, 0.0]);
    }

    #[test]
    fn byte_accounting_includes_index_overhead_and_dense_fallback() {
        let f = WireFormat::TopK(64);
        assert_eq!(f.upload_bytes(2000), 8 + 8 * 64);
        // k >= len: sparse would cost more than dense f32 — fall back.
        assert_eq!(f.upload_bytes(10), 40);
        // Broadcast support is the union of survivors' picks, capped at len.
        assert_eq!(f.broadcast_bytes(2000, 4), 8 + 8 * 256);
        assert_eq!(WireFormat::TopK(600).broadcast_bytes(2000, 4), 4 * 2000);
        assert_eq!(WireFormat::Raw.broadcast_bytes(2000, 4), 8000);
        assert_eq!(WireFormat::Fp16.broadcast_bytes(2000, 4), 4000);
        assert_eq!(WireFormat::Fp16.upload_bytes(2000), 4000);
    }

    #[test]
    fn into_variants_match_allocating_forms_across_rounds() {
        // Two codec instances per format, fed the same delta stream: the
        // allocating and the buffer-reusing paths must agree payload for
        // payload (including TopKEf's residual evolution), and the reused
        // dense decode buffer must match a fresh decode every round.
        for f in [
            WireFormat::Raw,
            WireFormat::Fp16,
            WireFormat::TopK(3),
            WireFormat::TopKEf(3),
        ] {
            let mut alloc = f.codec();
            let mut reuse = f.codec();
            let mut payload = WirePayload::F32(Vec::new());
            let mut dense = Vec::new();
            for round in 0..4u32 {
                let delta: Vec<f32> = (0..16)
                    .map(|i| ((i * 7 + round * 3) % 13) as f32 - 6.0)
                    .collect();
                let expect = alloc.encode(0, &delta);
                reuse.encode_into(0, &delta, &mut payload);
                assert_eq!(expect, payload, "{f} round {round}");
                reuse.decode_into(&payload, &mut dense);
                assert_eq!(alloc.decode(&expect), dense, "{f} round {round}");
            }
        }
    }

    #[test]
    fn codecs_report_their_format() {
        for f in [
            WireFormat::Raw,
            WireFormat::Fp16,
            WireFormat::TopK(7),
            WireFormat::TopKEf(7),
        ] {
            let codec = f.codec();
            assert_eq!(codec.format(), f);
            assert_eq!(codec.upload_bytes(100), f.upload_bytes(100));
            assert_eq!(codec.broadcast_bytes(100, 3), f.broadcast_bytes(100, 3));
        }
    }
}

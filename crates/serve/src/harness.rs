//! The load harness: replay an open-loop Poisson arrival process against
//! the serving cost model on the deterministic `scd-events` engine and
//! report the latency distribution and throughput at each batch size.
//!
//! Open-loop means arrivals do not wait for responses — the generator
//! keeps firing at its configured rate even when the server falls
//! behind, which is what exposes queueing delay: at batch size 1 the
//! per-request overhead caps throughput below the offered load and p99
//! explodes, while larger batches amortize the overhead and drain the
//! queue. Per-batch service time comes from the calibrated
//! [`CpuProfile`]: one model-vector touch (the batching overhead) plus
//! the nnz-proportional dot-product cost the training-side model already
//! charges for coordinate sweeps.

use rand::{rngs::StdRng, Rng, SeedableRng};
use scd_events::Engine;
use scd_perf_model::CpuProfile;
use std::collections::VecDeque;

/// One simulated workload configuration.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Total requests to replay.
    pub requests: usize,
    /// Offered load: mean arrival rate of the Poisson process (req/s).
    pub arrival_rate_hz: f64,
    /// Maximum rows the server packs into one batch.
    pub batch: usize,
    /// Model width (features) — sets the per-batch vector-touch cost.
    pub features: usize,
    /// Non-zeros per scored row — sets the per-row dot cost.
    pub nnz_per_row: usize,
    /// Arrival-process seed (the simulation is otherwise deterministic).
    pub seed: u64,
}

/// Latency/throughput summary of one simulated run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Batch cap the server ran with.
    pub batch: usize,
    /// Requests completed (always `spec.requests`).
    pub requests: usize,
    /// Median request latency in seconds (arrival → batch completion).
    pub p50_s: f64,
    /// 99th-percentile latency in seconds.
    pub p99_s: f64,
    /// Mean latency in seconds.
    pub mean_s: f64,
    /// Worst-case latency in seconds.
    pub max_s: f64,
    /// Completed requests per simulated second (makespan throughput).
    pub throughput_rps: f64,
    /// Batches the server executed.
    pub batches: usize,
    /// Mean rows per executed batch.
    pub mean_batch_fill: f64,
    /// Virtual time at which the last request completed.
    pub sim_seconds: f64,
    /// Offered load / service capacity at this batch size (ρ > 1 means
    /// the queue grows without bound until arrivals stop).
    pub utilization: f64,
}

/// Simulation events: a request arriving, or the server finishing the
/// batch it is working on.
#[derive(Debug)]
enum Event {
    Arrive {
        /// Request id == index into the latency table.
        id: usize,
    },
    BatchDone,
}

/// Per-batch service seconds for `rows` rows under the cost model.
pub fn batch_service_seconds(profile: &CpuProfile, spec: &LoadSpec, rows: usize) -> f64 {
    // One pass over the model vector (dispatch + weight streaming), then
    // the same per-nnz dot cost the sequential trainer is charged.
    profile.host_vector_op_seconds(spec.features)
        + profile.sequential_epoch_seconds(rows * spec.nnz_per_row, rows)
}

/// Steady-state capacity (rows/s) of the server at full batches.
pub fn capacity_rps(profile: &CpuProfile, spec: &LoadSpec) -> f64 {
    spec.batch as f64 / batch_service_seconds(profile, spec, spec.batch)
}

/// Replay the arrival process to completion and summarize latencies.
pub fn simulate(profile: &CpuProfile, spec: &LoadSpec) -> LoadReport {
    assert!(spec.requests > 0, "need at least one request");
    assert!(spec.batch >= 1, "batch cap must be >= 1");
    assert!(spec.arrival_rate_hz > 0.0, "arrival rate must be positive");

    let mut engine: Engine<Event> = Engine::new();
    // Pre-schedule the whole open-loop arrival stream: exponential
    // interarrivals at the offered rate, independent of service.
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut t = 0.0f64;
    for id in 0..spec.requests {
        let u: f64 = rng.gen();
        t += -(1.0 - u).ln() / spec.arrival_rate_hz;
        engine.schedule_at(t, Event::Arrive { id });
    }

    let mut queue: VecDeque<(usize, f64)> = VecDeque::new();
    let mut busy = false;
    let mut in_flight: Vec<usize> = Vec::new();
    let mut latency = vec![0.0f64; spec.requests];
    let mut batches = 0usize;
    let mut rows_batched = 0usize;
    let mut last_done = 0.0f64;

    while let Some((_, event)) = engine.step() {
        let now = engine.now();
        match event {
            Event::Arrive { id } => {
                queue.push_back((id, now));
            }
            Event::BatchDone => {
                busy = false;
                for &id in &in_flight {
                    latency[id] = now - latency[id];
                }
                in_flight.clear();
                last_done = now;
            }
        }
        if !busy && !queue.is_empty() {
            let take = queue.len().min(spec.batch);
            in_flight = Vec::with_capacity(take);
            for _ in 0..take {
                let (id, arrived) = queue.pop_front().unwrap();
                // Stash the arrival time in the latency slot; BatchDone
                // overwrites it with the completed latency.
                latency[id] = arrived;
                in_flight.push(id);
            }
            busy = true;
            batches += 1;
            rows_batched += take;
            engine.schedule_in(batch_service_seconds(profile, spec, take), Event::BatchDone);
        }
    }
    debug_assert!(queue.is_empty() && in_flight.is_empty());

    let mut sorted = latency.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |q: f64| sorted[((q * (sorted.len() - 1) as f64).round()) as usize];
    LoadReport {
        batch: spec.batch,
        requests: spec.requests,
        p50_s: pct(0.50),
        p99_s: pct(0.99),
        mean_s: latency.iter().sum::<f64>() / spec.requests as f64,
        max_s: sorted[sorted.len() - 1],
        throughput_rps: spec.requests as f64 / last_done,
        batches,
        mean_batch_fill: rows_batched as f64 / batches.max(1) as f64,
        sim_seconds: last_done,
        utilization: spec.arrival_rate_hz / capacity_rps(profile, spec),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(batch: usize, rate: f64) -> LoadSpec {
        LoadSpec {
            requests: 4000,
            arrival_rate_hz: rate,
            batch,
            features: 1000,
            nnz_per_row: 40,
            seed: 7,
        }
    }

    #[test]
    fn simulation_is_deterministic_in_the_seed() {
        let profile = CpuProfile::xeon_e5_2640();
        let a = simulate(&profile, &spec(8, 50_000.0));
        let b = simulate(&profile, &spec(8, 50_000.0));
        assert_eq!(a.p99_s.to_bits(), b.p99_s.to_bits());
        assert_eq!(a.throughput_rps.to_bits(), b.throughput_rps.to_bits());
        assert_eq!(a.batches, b.batches);
    }

    #[test]
    fn all_requests_complete_and_latencies_are_positive() {
        let profile = CpuProfile::xeon_e5_2640();
        let r = simulate(&profile, &spec(16, 50_000.0));
        assert_eq!(r.requests, 4000);
        assert!(r.p50_s > 0.0 && r.p99_s >= r.p50_s && r.max_s >= r.p99_s);
        assert!(r.mean_batch_fill >= 1.0 && r.mean_batch_fill <= 16.0);
        assert!(r.throughput_rps > 0.0);
    }

    #[test]
    fn batching_amortizes_overload_that_swamps_batch_one() {
        // Offered load beyond batch-1 capacity but within batch-64
        // capacity: the batched server keeps p99 bounded, the unbatched
        // one queues without bound (latency grows with request index).
        let profile = CpuProfile::xeon_e5_2640();
        let rate = 0.7 * capacity_rps(&profile, &spec(64, 1.0));
        assert!(
            rate > capacity_rps(&profile, &spec(1, 1.0)),
            "the sweep rate must overload the unbatched server"
        );
        let unbatched = simulate(&profile, &spec(1, rate));
        let batched = simulate(&profile, &spec(64, rate));
        assert!(unbatched.utilization > 1.0 && batched.utilization < 1.0);
        assert!(
            batched.p99_s < unbatched.p99_s / 10.0,
            "batched p99 {} vs unbatched {}",
            batched.p99_s,
            unbatched.p99_s
        );
        assert!(batched.throughput_rps > unbatched.throughput_rps);
    }

    #[test]
    fn light_load_leaves_batches_mostly_empty() {
        let profile = CpuProfile::xeon_e5_2640();
        let r = simulate(&profile, &spec(64, 0.05 * capacity_rps(&profile, &spec(64, 1.0))));
        assert!(r.utilization < 0.1);
        assert!(r.mean_batch_fill < 8.0, "fill {}", r.mean_batch_fill);
    }
}

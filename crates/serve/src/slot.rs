//! [`ModelSlot`] — the snapshot-publication primitive that connects a
//! live training loop (the producer) to the inference engine (the
//! consumers).
//!
//! ## Consistency contract
//!
//! * **Readers never block writers.** A publish never waits for any
//!   reader: the writer bumps the version counter to odd, stores every
//!   word, and bumps it back to even. Readers that raced the write
//!   detect the version change and retry; the writer never even learns
//!   they exist.
//! * **Torn reads are impossible.** A successful [`ModelSlot::read`]
//!   returns a snapshot whose every word was published by one single
//!   `publish` call — never a blend of two publications. This is the
//!   classic seqlock protocol: a reader that observed version `v1`
//!   (even) before copying and the same `v1` after copying is guaranteed
//!   no writer touched the words in between.
//! * **Single producer, many consumers.** Concurrent writers are
//!   serialized by an internal mutex (writers may block each other,
//!   never readers). The expected topology is one training driver
//!   publishing at round boundaries while any number of serving threads
//!   read.
//!
//! Every word of the payload is an atomic (`AtomicU32` bit patterns of
//! `f32`, `AtomicU64` for the metadata), so the racing accesses the
//! protocol allows are plain relaxed atomic loads/stores — no undefined
//! behaviour, with the ordering supplied by the acquire/release fences
//! exactly as in the crossbeam seqlock recipe.
//!
//! The capacity (feature count) is fixed at construction: a model swap
//! replaces the weights, it never resizes the model. `seq` starts at 0
//! (nothing published; [`ModelSlot::read`] returns `None`) and
//! increments once per publish, so consumers can tell swaps apart.

use scd_core::ObjectiveKind;
use std::sync::atomic::{fence, AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

/// One fully-published model: what a reader gets back from the slot.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSnapshot {
    /// Publication sequence number (1 = first publish).
    pub seq: u64,
    /// The objective the weights were trained for (decides how decision
    /// values map to predictions).
    pub objective: ObjectiveKind,
    /// The regularizer the model was trained with.
    pub lambda: f64,
    /// Primal weights β, one per feature.
    pub beta: Vec<f32>,
}

/// The seqlock-protected publication slot. See the module docs for the
/// consistency contract.
pub struct ModelSlot {
    /// Seqlock version: even = stable, odd = publish in progress.
    version: AtomicU64,
    /// Serializes writers (never touched by readers).
    writer: Mutex<()>,
    /// Publication counter (0 = empty). Written inside the odd window.
    seq: AtomicU64,
    /// `f64::to_bits` of λ. Written inside the odd window.
    lambda_bits: AtomicU64,
    /// Index into [`ObjectiveKind::ALL`]. Written inside the odd window.
    objective_tag: AtomicU64,
    /// `f32::to_bits` of β. Written inside the odd window.
    words: Box<[AtomicU32]>,
    /// Reader retries observed (diagnostic; relaxed counter).
    retries: AtomicU64,
}

fn objective_tag(objective: ObjectiveKind) -> u64 {
    ObjectiveKind::ALL
        .iter()
        .position(|&k| k == objective)
        .expect("every ObjectiveKind is in ALL") as u64
}

impl ModelSlot {
    /// An empty slot for models with `features` weights.
    pub fn new(features: usize) -> ModelSlot {
        ModelSlot {
            version: AtomicU64::new(0),
            writer: Mutex::new(()),
            seq: AtomicU64::new(0),
            lambda_bits: AtomicU64::new(0),
            objective_tag: AtomicU64::new(0),
            words: (0..features).map(|_| AtomicU32::new(0)).collect(),
            retries: AtomicU64::new(0),
        }
    }

    /// The fixed feature count this slot publishes.
    pub fn features(&self) -> usize {
        self.words.len()
    }

    /// Sequence number of the latest publication (0 = none yet). A bare
    /// monotone probe — cheaper than [`ModelSlot::read`] when only the
    /// swap count is wanted.
    pub fn seq(&self) -> u64 {
        // An in-progress publish has already committed to producing this
        // seq, so reading it mid-window is still monotone and truthful.
        self.seq.load(Ordering::Acquire)
    }

    /// How many reads had to retry because they raced a publish.
    pub fn reader_retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Publish a new snapshot, returning its sequence number. Never
    /// blocks on readers.
    ///
    /// # Panics
    /// Panics if `beta` does not match the slot's feature count.
    pub fn publish(&self, objective: ObjectiveKind, lambda: f64, beta: &[f32]) -> u64 {
        assert_eq!(
            beta.len(),
            self.words.len(),
            "model swap cannot resize: slot holds {} features, got {}",
            self.words.len(),
            beta.len()
        );
        let _writers = self.writer.lock().unwrap();
        let v = self.version.load(Ordering::Relaxed);
        debug_assert!(v.is_multiple_of(2), "stable slot has an even version");
        // Enter the odd window; the release fence orders the version
        // bump before every payload store below.
        self.version.store(v + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        let seq = self.seq.load(Ordering::Relaxed) + 1;
        self.seq.store(seq, Ordering::Relaxed);
        self.lambda_bits.store(lambda.to_bits(), Ordering::Relaxed);
        self.objective_tag
            .store(objective_tag(objective), Ordering::Relaxed);
        for (word, &b) in self.words.iter().zip(beta) {
            word.store(b.to_bits(), Ordering::Relaxed);
        }
        // Leave the window; the release store publishes the payload.
        self.version.store(v + 2, Ordering::Release);
        seq
    }

    /// Read the latest fully-published snapshot, or `None` if nothing
    /// has been published yet. Lock-free: retries (never blocks) while a
    /// publish is in flight.
    pub fn read(&self) -> Option<ModelSnapshot> {
        let mut beta = vec![0.0f32; self.words.len()];
        loop {
            let v1 = self.version.load(Ordering::Acquire);
            if v1 % 2 == 1 {
                // A publish is mid-window; spin until it lands.
                self.retries.fetch_add(1, Ordering::Relaxed);
                std::hint::spin_loop();
                continue;
            }
            let seq = self.seq.load(Ordering::Relaxed);
            let lambda = f64::from_bits(self.lambda_bits.load(Ordering::Relaxed));
            let tag = self.objective_tag.load(Ordering::Relaxed) as usize;
            for (out, word) in beta.iter_mut().zip(self.words.iter()) {
                *out = f32::from_bits(word.load(Ordering::Relaxed));
            }
            // The acquire fence orders the payload loads above before the
            // version re-check: an unchanged even version proves no
            // publish overlapped the copy.
            fence(Ordering::Acquire);
            if self.version.load(Ordering::Relaxed) == v1 {
                if seq == 0 {
                    return None;
                }
                let objective = ObjectiveKind::ALL[tag];
                return Some(ModelSnapshot {
                    seq,
                    objective,
                    lambda,
                    beta,
                });
            }
            self.retries.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for ModelSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelSlot")
            .field("features", &self.words.len())
            .field("seq", &self.seq())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_slot_reads_none() {
        let slot = ModelSlot::new(4);
        assert_eq!(slot.read(), None);
        assert_eq!(slot.seq(), 0);
        assert_eq!(slot.features(), 4);
    }

    #[test]
    fn publish_read_roundtrip() {
        let slot = ModelSlot::new(3);
        let seq = slot.publish(ObjectiveKind::Svm, 0.25, &[1.0, -2.5, 0.0]);
        assert_eq!(seq, 1);
        let snap = slot.read().unwrap();
        assert_eq!(snap.seq, 1);
        assert_eq!(snap.objective, ObjectiveKind::Svm);
        assert_eq!(snap.lambda, 0.25);
        assert_eq!(snap.beta, vec![1.0, -2.5, 0.0]);

        let seq = slot.publish(ObjectiveKind::Lasso, 0.5, &[0.0, 0.0, 7.0]);
        assert_eq!(seq, 2);
        let snap = slot.read().unwrap();
        assert_eq!(snap.seq, 2);
        assert_eq!(snap.objective, ObjectiveKind::Lasso);
        assert_eq!(snap.beta[2], 7.0);
        assert!(format!("{slot:?}").contains("seq"));
    }

    #[test]
    #[should_panic(expected = "cannot resize")]
    fn publish_rejects_wrong_width() {
        ModelSlot::new(3).publish(ObjectiveKind::Ridge, 0.1, &[1.0]);
    }

    #[test]
    fn zero_feature_models_are_fine() {
        // Degenerate but legal: the protocol carries only metadata.
        let slot = ModelSlot::new(0);
        slot.publish(ObjectiveKind::Ridge, 1e-3, &[]);
        let snap = slot.read().unwrap();
        assert!(snap.beta.is_empty());
        assert_eq!(snap.seq, 1);
    }
}

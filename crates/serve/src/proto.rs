//! The JSON-lines serving protocol: one request object per input line,
//! one response object per output line, flushed per line so pipes never
//! deadlock.
//!
//! Requests:
//! * `{"op":"info"}` — model metadata:
//!   `{"ok":true,"model_seq":3,"features":128,"objective":"svm","lambda":0.001}`
//! * `{"op":"score","rows":[[[0,1.5],[7,-2.0]],[[3,0.25]]]}` — each row
//!   is a sparse `[index, value]` pair list; the response carries the
//!   decision values and predictions in row order plus the `model_seq`
//!   the batch was scored against (so hot swaps are observable):
//!   `{"ok":true,"model_seq":3,"objective":"svm","decisions":[…],"predictions":[…]}`
//!
//! Every failure — unparseable JSON, unknown op, malformed rows, no
//! model published yet — answers `{"ok":false,"error":"…"}` on one line
//! and the session keeps serving; only input EOF (or a broken output
//! pipe) ends it. Each scored batch reads one [`ModelSlot`] snapshot, so
//! a batch is never scored against a blend of two models.

use crate::engine::{batch_from_pairs, BatchScorer};
use crate::json::{escape, num_f32, Json};
use crate::slot::ModelSlot;
use crate::ServeError;
use std::io::{BufRead, Write};

/// Per-session counters, returned when the input side closes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests answered (including error responses).
    pub requests: u64,
    /// Rows scored across all `score` requests.
    pub scored_rows: u64,
    /// Requests answered with `"ok":false`.
    pub errors: u64,
}

/// Parse the `rows` field of a score request into sparse pair lists.
fn parse_rows(rows: &Json) -> Result<Vec<Vec<(u32, f32)>>, ServeError> {
    let rows = rows
        .as_arr()
        .ok_or_else(|| ServeError::BadRequest("\"rows\" must be an array of rows".into()))?;
    let mut out = Vec::with_capacity(rows.len());
    for (r, row) in rows.iter().enumerate() {
        let pairs = row.as_arr().ok_or_else(|| {
            ServeError::BadRequest(format!("row {r} must be an array of [index, value] pairs"))
        })?;
        let mut parsed = Vec::with_capacity(pairs.len());
        for pair in pairs {
            let err = || {
                ServeError::BadRequest(format!(
                    "row {r} must contain [index, value] pairs of numbers"
                ))
            };
            let pair = pair.as_arr().ok_or_else(err)?;
            if pair.len() != 2 {
                return Err(err());
            }
            let idx = pair[0].as_f64().ok_or_else(err)?;
            let val = pair[1].as_f64().ok_or_else(err)?;
            if idx < 0.0 || idx.fract() != 0.0 || idx > u32::MAX as f64 {
                return Err(ServeError::BadRequest(format!(
                    "row {r}: feature index {idx} is not a valid u32"
                )));
            }
            parsed.push((idx as u32, val as f32));
        }
        out.push(parsed);
    }
    Ok(out)
}

fn join_f32(values: &[f32]) -> String {
    values.iter().map(|&v| num_f32(v)).collect::<Vec<_>>().join(",")
}

/// One answered request: the response line (always valid JSON, no
/// trailing newline) plus its accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The JSON response object, ready to write as one line.
    pub line: String,
    /// Whether the response carries `"ok":true`.
    pub ok: bool,
    /// Rows scored by this request (0 unless it was a successful `score`).
    pub scored_rows: u64,
}

/// Answer one request line; `Ok` responses carry the line and the number
/// of rows scored.
fn answer(line: &str, slot: &ModelSlot, scorer: &BatchScorer) -> Result<(String, u64), ServeError> {
    let req = Json::parse(line).map_err(|e| ServeError::BadRequest(format!("bad JSON: {e}")))?;
    let op = req
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::BadRequest("request needs a string \"op\" field".into()))?;
    match op {
        "info" => match slot.read() {
            Some(snap) => Ok((
                format!(
                    "{{\"ok\":true,\"model_seq\":{},\"features\":{},\"objective\":{},\"lambda\":{}}}",
                    snap.seq,
                    snap.beta.len(),
                    escape(snap.objective.label()),
                    snap.lambda,
                ),
                0,
            )),
            None => Ok((
                format!(
                    "{{\"ok\":true,\"model_seq\":0,\"features\":{},\"objective\":null,\"lambda\":null}}",
                    slot.features(),
                ),
                0,
            )),
        },
        "score" => {
            let rows = req
                .get("rows")
                .ok_or_else(|| ServeError::BadRequest("score request needs \"rows\"".into()))?;
            let rows = parse_rows(rows)?;
            let snap = slot.read().ok_or(ServeError::NoModel)?;
            let batch = batch_from_pairs(&rows, snap.beta.len())?;
            let scored = scorer.score(&batch, snap.objective, &snap.beta)?;
            Ok((
                format!(
                    "{{\"ok\":true,\"model_seq\":{},\"objective\":{},\"decisions\":[{}],\"predictions\":[{}]}}",
                    snap.seq,
                    escape(snap.objective.label()),
                    join_f32(&scored.decisions),
                    join_f32(&scored.predictions),
                ),
                scored.decisions.len() as u64,
            ))
        }
        other => Err(ServeError::BadRequest(format!(
            "unknown op {other:?} (info|score)"
        ))),
    }
}

/// Answer one request line, folding failures into an `"ok":false`
/// response. This is the per-line entry point: [`serve_lines`] calls it
/// for every input line, and callers that interpose extra ops (the CLI
/// handles `reload` itself) fall back to it for everything else.
pub fn respond(line: &str, slot: &ModelSlot, scorer: &BatchScorer) -> Response {
    match answer(line, slot, scorer) {
        Ok((line, scored_rows)) => Response { line, ok: true, scored_rows },
        Err(e) => Response {
            line: format!("{{\"ok\":false,\"error\":{}}}", escape(&e.to_string())),
            ok: false,
            scored_rows: 0,
        },
    }
}

/// Serve JSON-lines requests from `input` until EOF, writing one
/// response per line to `output` (flushed per line). Errors answer
/// `"ok":false` and never kill the session; only I/O failure on the
/// transport itself returns `Err`.
pub fn serve_lines<R: BufRead, W: Write>(
    slot: &ModelSlot,
    scorer: &BatchScorer,
    input: R,
    mut output: W,
) -> std::io::Result<ServeStats> {
    let mut stats = ServeStats::default();
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        stats.requests += 1;
        let response = respond(&line, slot, scorer);
        stats.scored_rows += response.scored_rows;
        if !response.ok {
            stats.errors += 1;
        }
        writeln!(output, "{}", response.line)?;
        output.flush()?;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scd_core::ObjectiveKind;
    use scd_sched::global;

    fn session(input: &str, slot: &ModelSlot) -> (Vec<String>, ServeStats) {
        let scorer = BatchScorer::new(global());
        let mut out = Vec::new();
        let stats = serve_lines(slot, &scorer, input.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        (text.lines().map(str::to_string).collect(), stats)
    }

    #[test]
    fn score_roundtrip_reports_model_seq_and_predictions() {
        let slot = ModelSlot::new(3);
        slot.publish(ObjectiveKind::Svm, 1e-3, &[1.0, -1.0, 0.5]);
        let (lines, stats) = session(
            "{\"op\":\"info\"}\n{\"op\":\"score\",\"rows\":[[[0,2.0]],[[1,3.0]],[]]}\n",
            &slot,
        );
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"model_seq\":1"), "{}", lines[0]);
        assert!(lines[0].contains("\"objective\":\"svm\""), "{}", lines[0]);
        let parsed = Json::parse(&lines[1]).unwrap();
        assert_eq!(parsed.get("ok"), Some(&Json::Bool(true)));
        let preds = parsed.get("predictions").and_then(Json::as_arr).unwrap();
        assert_eq!(
            preds.iter().map(|p| p.as_f64().unwrap()).collect::<Vec<_>>(),
            vec![1.0, -1.0, 1.0],
            "sign rule: 2·1 > 0, 3·−1 < 0, empty row ⟨⟩ = 0 → +1"
        );
        assert_eq!(stats, ServeStats { requests: 2, scored_rows: 3, errors: 0 });
    }

    #[test]
    fn malformed_requests_answer_errors_and_keep_serving() {
        let slot = ModelSlot::new(2);
        slot.publish(ObjectiveKind::Ridge, 1e-2, &[1.0, 2.0]);
        let input = "not json\n\
                     {\"op\":\"nope\"}\n\
                     {\"op\":\"score\"}\n\
                     {\"op\":\"score\",\"rows\":[[[9,1.0]]]}\n\
                     {\"op\":\"score\",\"rows\":[[[0,1.0]]]}\n";
        let (lines, stats) = session(input, &slot);
        assert_eq!(lines.len(), 5);
        for bad in &lines[..4] {
            let parsed = Json::parse(bad).expect("error responses are valid JSON");
            assert_eq!(parsed.get("ok"), Some(&Json::Bool(false)), "{bad}");
            assert!(parsed.get("error").and_then(Json::as_str).is_some());
        }
        assert!(lines[4].contains("\"ok\":true"), "session recovered: {}", lines[4]);
        assert_eq!(stats.errors, 4);
        assert_eq!(stats.requests, 5);
    }

    #[test]
    fn empty_slot_info_ok_but_scoring_is_an_error() {
        let slot = ModelSlot::new(4);
        let (lines, stats) = session(
            "{\"op\":\"info\"}\n{\"op\":\"score\",\"rows\":[[[0,1.0]]]}\n",
            &slot,
        );
        assert!(lines[0].contains("\"model_seq\":0"));
        assert!(lines[0].contains("\"objective\":null"));
        assert!(lines[1].contains("no model published"), "{}", lines[1]);
        assert_eq!(stats.errors, 1);
    }

    #[test]
    fn blank_lines_are_ignored() {
        let slot = ModelSlot::new(1);
        let (lines, stats) = session("\n  \n{\"op\":\"info\"}\n", &slot);
        assert_eq!(lines.len(), 1);
        assert_eq!(stats.requests, 1);
    }

    #[test]
    fn hot_swap_between_requests_changes_seq_and_scores() {
        let slot = ModelSlot::new(1);
        let scorer = BatchScorer::new(global());
        slot.publish(ObjectiveKind::Ridge, 1e-2, &[2.0]);
        let r1 = respond("{\"op\":\"score\",\"rows\":[[[0,1.0]]]}", &slot, &scorer);
        slot.publish(ObjectiveKind::Ridge, 1e-2, &[5.0]);
        let r2 = respond("{\"op\":\"score\",\"rows\":[[[0,1.0]]]}", &slot, &scorer);
        assert!(r1.ok && r2.ok);
        assert_eq!((r1.scored_rows, r2.scored_rows), (1, 1));
        assert!(r1.line.contains("\"model_seq\":1") && r1.line.contains("[2]"), "{}", r1.line);
        assert!(r2.line.contains("\"model_seq\":2") && r2.line.contains("[5]"), "{}", r2.line);
    }
}

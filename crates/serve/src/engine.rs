//! The batched inference engine: score CSR rows against a model snapshot
//! through the shared `scd-sparse` kernels, batching the rows across the
//! `scd-sched` work-stealing scheduler.
//!
//! Decision values are the raw linear scores ⟨āₙ, β⟩ (the same
//! `dot_dense` kernel every training engine uses); predictions are the
//! objective's decision rule on top — identity for the regressors,
//! sign for the SVM, sigmoid probability for logistic.

use crate::ServeError;
use scd_core::ObjectiveKind;
use scd_sched::Scheduler;
use scd_sparse::CsrMatrix;
use std::sync::Arc;

/// Rows per parallel task: big enough to amortize scheduling, small
/// enough that a 256-row batch still fans out.
const DEFAULT_CHUNK: usize = 16;

/// Decision values plus objective-mapped predictions for one batch.
/// Reusable: [`BatchScorer::score_into`] refills one in place, so a
/// serving loop can hold a single `Scored` across requests.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Scored {
    /// Raw linear scores ⟨āₙ, β⟩.
    pub decisions: Vec<f32>,
    /// The objective's decision rule applied to each score.
    pub predictions: Vec<f32>,
}

/// Map a decision value to a prediction under an objective's decision
/// rule: the regressors (ridge, lasso) predict the score itself, the SVM
/// predicts the ±1 sign, logistic predicts P(y = +1) = σ(score).
pub fn prediction(objective: ObjectiveKind, decision: f32) -> f32 {
    match objective {
        ObjectiveKind::Ridge | ObjectiveKind::Lasso => decision,
        ObjectiveKind::Svm => {
            if decision >= 0.0 {
                1.0
            } else {
                -1.0
            }
        }
        ObjectiveKind::Logistic => (1.0 / (1.0 + (-(decision as f64)).exp())) as f32,
    }
}

/// Scores batches of CSR rows against a weight vector on a shared
/// scheduler.
pub struct BatchScorer {
    sched: Arc<Scheduler>,
    chunk: usize,
}

/// Raw output pointer handed to the scoring tasks. The chunked scheduler
/// guarantees disjoint ranges, so each task writes its own window; the
/// accessor method (rather than a bare field read) keeps closures
/// capturing the `Sync` wrapper instead of the raw pointer.
struct OutPtr(*mut f32);

impl OutPtr {
    /// # Safety
    /// `start..start + len` must lie inside the allocation and not
    /// overlap any other task's window — that disjointness is what makes
    /// the `&self → &mut` lifetime laundering sound.
    #[allow(clippy::mut_from_ref)]
    unsafe fn chunk(&self, start: usize, len: usize) -> &mut [f32] {
        std::slice::from_raw_parts_mut(self.0.add(start), len)
    }
}

unsafe impl Sync for OutPtr {}

impl BatchScorer {
    /// A scorer on the given scheduler with the default row chunking.
    pub fn new(sched: Arc<Scheduler>) -> BatchScorer {
        BatchScorer {
            sched,
            chunk: DEFAULT_CHUNK,
        }
    }

    /// Override the rows-per-task chunk (testing / tuning).
    pub fn with_chunk(mut self, chunk: usize) -> BatchScorer {
        assert!(chunk >= 1, "chunk must be >= 1");
        self.chunk = chunk;
        self
    }

    /// Decision values ⟨āₙ, β⟩ for every row of the batch.
    pub fn decisions(&self, rows: &CsrMatrix, beta: &[f32]) -> Result<Vec<f32>, ServeError> {
        let mut out = Vec::new();
        self.decisions_into(rows, beta, &mut out)?;
        Ok(out)
    }

    /// [`Self::decisions`] into a caller-owned buffer: once `out` has
    /// grown to the batch size, repeated scoring allocates nothing.
    pub fn decisions_into(
        &self,
        rows: &CsrMatrix,
        beta: &[f32],
        out: &mut Vec<f32>,
    ) -> Result<(), ServeError> {
        if rows.cols() > beta.len() {
            return Err(ServeError::FeatureMismatch {
                model: beta.len(),
                data: rows.cols(),
            });
        }
        let n = rows.rows();
        out.clear();
        out.resize(n, 0.0);
        // Disjoint per-chunk output windows through a raw pointer (the
        // same pattern as the SySCD merge): chunked ranges never overlap,
        // so each task owns its slice of `out`.
        let ptr = OutPtr(out.as_mut_ptr());
        self.sched
            .parallel_for_chunked(n, self.chunk, usize::MAX, &|range| {
                let slot = unsafe { ptr.chunk(range.start, range.len()) };
                for (i, row_idx) in range.enumerate() {
                    slot[i] = rows.row(row_idx).dot_dense(beta) as f32;
                }
            });
        Ok(())
    }

    /// Decisions plus predictions under the objective's decision rule.
    pub fn score(
        &self,
        rows: &CsrMatrix,
        objective: ObjectiveKind,
        beta: &[f32],
    ) -> Result<Scored, ServeError> {
        let mut scored = Scored::default();
        self.score_into(rows, objective, beta, &mut scored)?;
        Ok(scored)
    }

    /// [`Self::score`] into a caller-owned [`Scored`], reusing both of
    /// its vectors.
    pub fn score_into(
        &self,
        rows: &CsrMatrix,
        objective: ObjectiveKind,
        beta: &[f32],
        scored: &mut Scored,
    ) -> Result<(), ServeError> {
        self.decisions_into(rows, beta, &mut scored.decisions)?;
        scored.predictions.clear();
        scored
            .predictions
            .extend(scored.decisions.iter().map(|&d| prediction(objective, d)));
        Ok(())
    }
}

/// Assemble a CSR batch from sparse `(index, value)` rows, validating
/// indices against the model's feature space. Rows may be empty (they
/// score 0) and pairs may arrive in any order; duplicate indices within
/// a row are summed (CSR wants strictly increasing columns), indices
/// beyond `features` and non-finite values are rejected.
pub fn batch_from_pairs(
    rows: &[Vec<(u32, f32)>],
    features: usize,
) -> Result<CsrMatrix, ServeError> {
    let mut offsets = Vec::with_capacity(rows.len() + 1);
    let mut indices = Vec::new();
    let mut values = Vec::new();
    offsets.push(0usize);
    for (r, row) in rows.iter().enumerate() {
        let mut pairs = Vec::with_capacity(row.len());
        for &(idx, val) in row {
            if idx as usize >= features {
                return Err(ServeError::BadRequest(format!(
                    "row {r}: feature index {idx} out of range (model has {features})"
                )));
            }
            if !val.is_finite() {
                return Err(ServeError::BadRequest(format!(
                    "row {r}: non-finite value at feature {idx}"
                )));
            }
            pairs.push((idx, val));
        }
        pairs.sort_by_key(|&(idx, _)| idx);
        for (idx, val) in pairs {
            if indices.last() == Some(&idx) && *offsets.last().unwrap() < indices.len() {
                *values.last_mut().unwrap() += val;
            } else {
                indices.push(idx);
                values.push(val);
            }
        }
        offsets.push(indices.len());
    }
    CsrMatrix::from_raw(rows.len(), features, offsets, indices, values)
        .map_err(|e| ServeError::BadRequest(format!("bad batch: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use scd_sched::global;

    fn batch() -> CsrMatrix {
        batch_from_pairs(
            &[
                vec![(0, 1.0), (2, 2.0)],
                vec![],
                vec![(1, -1.0)],
                vec![(0, 0.5), (1, 0.5), (2, 0.5)],
            ],
            3,
        )
        .unwrap()
    }

    #[test]
    fn decisions_match_serial_dot() {
        let beta = [1.0f32, 2.0, -0.5];
        let rows = batch();
        let scorer = BatchScorer::new(global()).with_chunk(2);
        let got = scorer.decisions(&rows, &beta).unwrap();
        for (i, &d) in got.iter().enumerate() {
            let want = rows.row(i).dot_dense(&beta) as f32;
            assert_eq!(d.to_bits(), want.to_bits(), "row {i}");
        }
        assert_eq!(got[1], 0.0, "empty row scores zero");
    }

    #[test]
    fn predictions_follow_the_objective_rule() {
        let beta = [1.0f32, 2.0, -0.5];
        let rows = batch();
        let scorer = BatchScorer::new(global());
        let ridge = scorer.score(&rows, ObjectiveKind::Ridge, &beta).unwrap();
        assert_eq!(ridge.predictions, ridge.decisions);
        let svm = scorer.score(&rows, ObjectiveKind::Svm, &beta).unwrap();
        for (&p, &d) in svm.predictions.iter().zip(&svm.decisions) {
            assert_eq!(p, if d >= 0.0 { 1.0 } else { -1.0 });
        }
        let logistic = scorer.score(&rows, ObjectiveKind::Logistic, &beta).unwrap();
        for (&p, &d) in logistic.predictions.iter().zip(&logistic.decisions) {
            assert!(p > 0.0 && p < 1.0);
            assert_eq!(p >= 0.5, d >= 0.0, "sigmoid preserves the sign rule");
        }
        // σ(0) = 0.5 exactly.
        assert_eq!(prediction(ObjectiveKind::Logistic, 0.0), 0.5);
    }

    #[test]
    fn feature_mismatch_is_an_error_not_a_panic() {
        let rows = batch();
        let scorer = BatchScorer::new(global());
        let err = scorer.decisions(&rows, &[1.0, 2.0]).unwrap_err();
        assert!(err.to_string().contains("model has 2 features"), "{err}");
    }

    #[test]
    fn bad_rows_are_rejected_with_row_numbers() {
        let err = batch_from_pairs(&[vec![(5, 1.0)]], 3).unwrap_err();
        assert!(err.to_string().contains("row 0"), "{err}");
        assert!(err.to_string().contains("out of range"), "{err}");
        let err = batch_from_pairs(&[vec![], vec![(0, f32::NAN)]], 3).unwrap_err();
        assert!(err.to_string().contains("row 1"), "{err}");
        assert!(err.to_string().contains("non-finite"), "{err}");
    }

    #[test]
    fn unsorted_and_duplicate_pairs_are_normalized() {
        // [ (2,1), (0,3), (2,2) ] ≡ column 0 → 3, column 2 → 3.
        let rows = batch_from_pairs(&[vec![(2, 1.0), (0, 3.0), (2, 2.0)]], 3).unwrap();
        let beta = [1.0f32, 100.0, 10.0];
        let scorer = BatchScorer::new(global());
        assert_eq!(scorer.decisions(&rows, &beta).unwrap(), vec![33.0]);
        // A duplicate in row 1 must not merge into row 0's last entry.
        let rows = batch_from_pairs(&[vec![(2, 1.0)], vec![(2, 5.0)]], 3).unwrap();
        assert_eq!(scorer.decisions(&rows, &beta).unwrap(), vec![10.0, 50.0]);
    }

    #[test]
    fn wide_model_accepts_narrow_batch() {
        // The model may have more features than the request mentions.
        let rows = batch_from_pairs(&[vec![(0, 2.0)]], 1).unwrap();
        let scorer = BatchScorer::new(global());
        let got = scorer.decisions(&rows, &[3.0, 9.9, 9.9]).unwrap();
        assert_eq!(got, vec![6.0]);
    }
}

//! `scd-serve` — the consumer side of the stack: everything between a
//! trained (or *training*) weight vector and a caller who wants scores.
//!
//! The producer side of this repository (TPA-SCD, the CPU engines, the
//! distributed drivers) ends at a weight vector; this crate makes that
//! vector serve traffic:
//!
//! * [`slot`] — [`ModelSlot`], a seqlock snapshot-publication primitive.
//!   A live training driver publishes at round boundaries; serving
//!   threads read consistent snapshots without ever blocking the writer
//!   (hot model swap under load).
//! * [`engine`] — [`BatchScorer`], batched inference over the shared
//!   `scd-sparse` dot kernels on the `scd-sched` scheduler, with the
//!   per-objective decision rules (regression score, SVM sign, logistic
//!   probability).
//! * [`proto`] — the JSON-lines request/response protocol behind
//!   `scd serve` (one request per line, errors never kill the session).
//! * [`harness`] — an open-loop Poisson load generator on `scd-events`
//!   replayed against the calibrated perf model: p50/p99 latency and
//!   throughput vs batch size (the numbers behind `BENCH_serve.json`).
//! * [`json`] — the minimal offline JSON reader/writer the protocol
//!   uses (the workspace vendors no serde).

pub mod engine;
pub mod harness;
pub mod json;
pub mod proto;
pub mod slot;

pub use engine::{batch_from_pairs, prediction, BatchScorer, Scored};
pub use harness::{batch_service_seconds, capacity_rps, simulate, LoadReport, LoadSpec};
pub use proto::{respond, serve_lines, Response, ServeStats};
pub use slot::{ModelSlot, ModelSnapshot};

/// Serving-side errors. Every variant renders as one line — the protocol
/// forwards them verbatim in `"error"` fields and the CLI prints them to
/// stderr.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request does not fit the model's feature space.
    FeatureMismatch {
        /// Features the model scores.
        model: usize,
        /// Width the batch claimed.
        data: usize,
    },
    /// Scoring was requested before anything was published.
    NoModel,
    /// A malformed request (bad JSON, bad rows, unknown op).
    BadRequest(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::FeatureMismatch { model, data } => write!(
                f,
                "feature-space mismatch: model has {model} features, batch is {data} wide"
            ),
            ServeError::NoModel => write!(f, "no model published yet"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_as_one_line() {
        for e in [
            ServeError::FeatureMismatch { model: 4, data: 9 },
            ServeError::NoModel,
            ServeError::BadRequest("rows must be arrays".into()),
        ] {
            let msg = e.to_string();
            assert!(!msg.contains('\n'), "{msg:?}");
            assert!(!msg.is_empty());
        }
    }
}

//! A minimal JSON reader/writer for the serving protocol.
//!
//! The workspace is offline (no serde); the protocol needs exactly one
//! value per line, so this is a small recursive-descent parser over the
//! full JSON grammar (objects, arrays, strings with escapes, numbers,
//! booleans, null) plus an escaping helper for output. Depth is bounded
//! so hostile input cannot blow the stack.

use std::collections::BTreeMap;

/// Maximum nesting depth accepted by the parser.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value. Numbers are `f64` (the protocol never needs
/// integers beyond 2⁵³).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps output deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parse one complete JSON value; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Look up a key, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected {lit:?} at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH}"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos, depth + 1)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Json::Num),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogates and other unpaired code points fall
                        // back to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => {
                return Err(format!("raw control byte in string at {pos}", pos = *pos))
            }
            Some(_) => {
                // Copy one full UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid UTF-8 in string")?;
                let ch = rest.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid number")?;
    text.parse::<f64>()
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

/// Escape a string for embedding in JSON output (adds the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an `f32` for JSON output (`null` for non-finite values, which
/// JSON cannot represent).
pub fn num_f32(v: f32) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(
            Json::parse(r#""a\nbA""#).unwrap(),
            Json::Str("a\nbA".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"op":"score","rows":[[[0,1.5],[3,-2]]],"n":2}"#).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("score"));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(2.0));
        let rows = v.get("rows").and_then(Json::as_arr).unwrap();
        let pairs = rows[0].as_arr().unwrap();
        assert_eq!(pairs[1].as_arr().unwrap()[0].as_f64(), Some(3.0));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "tru", "{\"a\" 1}", "\"unterminated", "1 2",
            "{\"a\":}", "[1 2]", "nul", "\"bad\\q\"", "--5",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        for s in ["plain", "quote\"back\\slash", "tab\tnew\nline", "ünïcödé", "\u{1}"] {
            let escaped = escape(s);
            assert_eq!(Json::parse(&escaped).unwrap(), Json::Str(s.into()));
        }
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(num_f32(f32::NAN), "null");
        assert_eq!(num_f32(f32::INFINITY), "null");
        assert_eq!(num_f32(1.25), "1.25");
    }
}

//! The ISSUE 9 acceptance property: `ModelSlot` readers see only
//! fully-published snapshots — bit-identical scoring before/after a
//! swap, never a blend — including while a *live* parameter-server
//! training loop publishes from another thread.

use proptest::prelude::*;
use proptest::collection::vec;
use scd_core::{ObjectiveKind, RidgeProblem, Solver};
use scd_datasets::{scale_values, webspam_like};
use scd_distributed::{ParamServerConfig, ParamServerScd};
use scd_serve::{batch_from_pairs, BatchScorer, ModelSlot};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-threaded exactness: after any sequence of publishes the
    /// slot returns the *last* snapshot bit-for-bit — metadata and every
    /// weight — and the sequence numbers count the publishes.
    #[test]
    fn read_returns_the_last_publish_exactly(
        features in 0usize..40,
        publishes in vec((0usize..4, -1e3f64..1e3, -100f32..100.0), 1..12),
    ) {
        let slot = ModelSlot::new(features);
        prop_assert_eq!(slot.read(), None);
        let mut expected = None;
        for (i, &(obj_idx, lambda, fill)) in publishes.iter().enumerate() {
            let objective = ObjectiveKind::ALL[obj_idx];
            // Distinct per-publish weights so a stale read would differ.
            let beta: Vec<f32> =
                (0..features).map(|j| fill + i as f32 * 1000.0 + j as f32).collect();
            let seq = slot.publish(objective, lambda, &beta);
            prop_assert_eq!(seq, i as u64 + 1);
            expected = Some((seq, objective, lambda, beta));
        }
        let snap = slot.read().unwrap();
        let (seq, objective, lambda, beta) = expected.unwrap();
        prop_assert_eq!(snap.seq, seq);
        prop_assert_eq!(snap.objective, objective);
        prop_assert_eq!(snap.lambda.to_bits(), lambda.to_bits());
        prop_assert_eq!(snap.beta.len(), beta.len());
        for (a, b) in snap.beta.iter().zip(&beta) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

/// Torn-read hammer: a writer publishes self-describing snapshots (every
/// word derivable from the sequence number) as fast as it can while
/// reader threads verify that each snapshot is internally consistent.
/// A single blended word fails the derivation check.
#[test]
fn concurrent_reads_never_observe_a_blend() {
    const FEATURES: usize = 257; // odd, > one cache line of words
    const PUBLISHES: u64 = 3000;
    const READERS: usize = 3;

    fn word(seq: u64, j: usize) -> f32 {
        (seq as f32) * 10_000.0 + j as f32
    }

    let slot = Arc::new(ModelSlot::new(FEATURES));
    let stop = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let slot = Arc::clone(&slot);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut reads = 0u64;
                let mut last_seq = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let Some(snap) = slot.read() else { continue };
                    assert!(snap.seq >= last_seq, "seq went backwards");
                    last_seq = snap.seq;
                    // Every field must derive from snap.seq — a torn
                    // read mixing publishes breaks at least one word.
                    assert_eq!(snap.lambda, snap.seq as f64 * 0.5, "blended lambda");
                    let want_obj =
                        ObjectiveKind::ALL[(snap.seq % ObjectiveKind::ALL.len() as u64) as usize];
                    assert_eq!(snap.objective, want_obj, "blended objective");
                    for (j, &b) in snap.beta.iter().enumerate() {
                        assert_eq!(
                            b.to_bits(),
                            word(snap.seq, j).to_bits(),
                            "blended weight {j} in snapshot {}",
                            snap.seq
                        );
                    }
                    reads += 1;
                }
                reads
            })
        })
        .collect();

    let mut beta = vec![0.0f32; FEATURES];
    for seq in 1..=PUBLISHES {
        for (j, b) in beta.iter_mut().enumerate() {
            *b = word(seq, j);
        }
        let objective = ObjectiveKind::ALL[(seq % ObjectiveKind::ALL.len() as u64) as usize];
        slot.publish(objective, seq as f64 * 0.5, &beta);
    }
    stop.store(true, Ordering::Relaxed);

    let total_reads: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(total_reads > 0, "readers never completed a read");
    assert_eq!(slot.seq(), PUBLISHES);
}

/// The live-training acceptance test: a real `ParamServerScd` loop
/// publishes its assembled weights at every round boundary while a
/// serving thread scores a fixed batch. Every scored batch must be
/// bit-identical to scoring the *recorded* weights of the snapshot's
/// sequence number — proving reads are consistent before, during, and
/// after hot swaps, never a blend of two rounds.
#[test]
fn scoring_is_bit_identical_across_live_param_server_swaps() {
    let data = scale_values(&webspam_like(160, 120, 8, 11), 0.3);
    let problem = RidgeProblem::from_labelled(&data, 1e-2).unwrap();
    let features = problem.m();

    let slot = Arc::new(ModelSlot::new(features));
    let published: Arc<Mutex<Vec<(u64, Vec<f32>)>>> = Arc::new(Mutex::new(Vec::new()));
    let stop = Arc::new(AtomicBool::new(false));

    // The trainer: a live param server running primal ridge (weights are
    // β directly), publishing after every epoch.
    let trainer = {
        let slot = Arc::clone(&slot);
        let published = Arc::clone(&published);
        let problem = RidgeProblem::from_labelled(&data, 1e-2).unwrap();
        thread::spawn(move || {
            let config = ParamServerConfig::new(4, scd_core::Form::Primal)
                .with_objective(ObjectiveKind::Ridge)
                .with_seed(5);
            let mut server = ParamServerScd::new(&problem, &config);
            for _ in 0..30 {
                server.epoch(&problem);
                let beta = server.assemble_weights();
                // Record first, then publish: when a reader sees seq S,
                // the recorded weights for S are already in the log.
                let mut log = published.lock().unwrap();
                let seq = slot.publish(ObjectiveKind::Ridge, problem.lambda(), &beta);
                log.push((seq, beta));
            }
        })
    };

    // The server: keep scoring one fixed batch against whatever snapshot
    // is current, remembering (seq, decisions) for the post-hoc check.
    let batch = batch_from_pairs(
        &(0..32)
            .map(|r| vec![(r as u32 % features as u32, 1.5), ((r as u32 * 7 + 3) % features as u32, -0.5)])
            .collect::<Vec<_>>(),
        features,
    )
    .unwrap();
    let scorer = BatchScorer::new(scd_sched::global());
    let mut observed: Vec<(u64, Vec<f32>)> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        if trainer.is_finished() {
            stop.store(true, Ordering::Relaxed);
        }
        if let Some(snap) = slot.read() {
            let decisions = scorer.decisions(&batch, &snap.beta).unwrap();
            observed.push((snap.seq, decisions));
        }
    }
    trainer.join().unwrap();

    // Post-hoc: every observed batch must bit-match a recompute from the
    // recorded weights of that exact publication.
    let log = published.lock().unwrap();
    assert_eq!(log.len(), 30, "one publish per epoch");
    let mut seqs_seen = std::collections::BTreeSet::new();
    for (seq, decisions) in &observed {
        let (_, beta) = log
            .iter()
            .find(|(s, _)| s == seq)
            .unwrap_or_else(|| panic!("snapshot {seq} was never published"));
        let want = scorer.decisions(&batch, beta).unwrap();
        for (d, w) in decisions.iter().zip(&want) {
            assert_eq!(
                d.to_bits(),
                w.to_bits(),
                "blended scoring at snapshot {seq}"
            );
        }
        seqs_seen.insert(*seq);
    }
    assert!(!observed.is_empty(), "the server never scored a batch");
    // The final model must have been observable.
    let final_snap = slot.read().unwrap();
    assert_eq!(final_snap.seq, 30);
    // Training actually changed the weights across rounds (the swaps
    // were real, not republications of the same vector).
    assert_ne!(log[0].1, log[29].1);
}

//! End-to-end tests of the compiled `scd` binary: real process, real
//! argv, real files — the exact surface a downstream user touches.

use std::path::PathBuf;
use std::process::{Command, Output};

fn scd(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_scd"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("scd_bin_{name}_{}", std::process::id()))
}

#[test]
fn help_succeeds_and_mentions_subcommands() {
    let out = scd(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for word in ["generate", "train", "predict", "sweep", "info"] {
        assert!(text.contains(word), "help missing {word}");
    }
}

#[test]
fn bad_usage_fails_with_nonzero_exit_and_stderr() {
    let out = scd(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr).unwrap().contains("missing subcommand"));

    let out = scd(&["train"]); // --data required
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr).unwrap().contains("--data"));

    let out = scd(&["warp", "--engage", "9"]);
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr).unwrap().contains("unknown subcommand"));
}

#[test]
fn full_workflow_generate_train_predict() {
    let data = tmp("wf_data.svm");
    let model = tmp("wf_model.txt");
    let data_s = data.to_str().unwrap();
    let model_s = model.to_str().unwrap();

    let out = scd(&[
        "generate", "--kind", "webspam", "--rows", "120", "--cols", "90", "--nnz-per-row", "8",
        "--scale", "0.3", "--output", data_s,
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = scd(&[
        "train", "--data", data_s, "--features", "90", "--lambda", "0.01", "--epochs", "40",
        "--eval-every", "20", "--save-model", model_s,
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("model saved"), "{text}");

    let out = scd(&["predict", "--model", model_s, "--data", data_s]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("accuracy:"), "{text}");

    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&model).ok();
}

#[test]
fn distributed_gpu_training_from_the_command_line() {
    let data = tmp("gpu_data.svm");
    let data_s = data.to_str().unwrap();
    let out = scd(&[
        "generate", "--kind", "criteo", "--rows", "200", "--fields", "5", "--cardinality", "20",
        "--output", data_s,
    ]);
    assert!(out.status.success());

    let out = scd(&[
        "train", "--data", data_s, "--features", "100", "--form", "dual", "--workers", "2",
        "--aggregation", "adaptive", "--solver", "tpa-titanx", "--epochs", "10",
        "--eval-every", "10",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("K=2"), "{text}");
    assert!(text.contains("adaptive"));

    std::fs::remove_file(&data).ok();
}

#[test]
fn unknown_backend_lists_the_valid_set() {
    let data = tmp("backend_data.svm");
    let data_s = data.to_str().unwrap();
    let out = scd(&[
        "generate", "--kind", "webspam", "--rows", "40", "--cols", "30", "--nnz-per-row", "4",
        "--output", data_s,
    ]);
    assert!(out.status.success());

    let out = scd(&["train", "--data", data_s, "--backend", "hyperdrive"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown --backend \"hyperdrive\""), "{err}");
    assert!(
        err.contains("seq|a-scd|wild|asyscd|syscd|tpa-m4000|tpa-titanx"),
        "error must list every valid backend: {err}"
    );

    std::fs::remove_file(&data).ok();
}

#[test]
fn syscd_backend_trains_and_help_documents_its_knobs() {
    let out = scd(&["train", "--help"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for word in ["--backend", "--buckets", "--merge-every", "syscd"] {
        assert!(text.contains(word), "train --help missing {word}: {text}");
    }

    let data = tmp("syscd_data.svm");
    let data_s = data.to_str().unwrap();
    let out = scd(&[
        "generate", "--kind", "webspam", "--rows", "100", "--cols", "80", "--nnz-per-row", "8",
        "--scale", "0.3", "--output", data_s,
    ]);
    assert!(out.status.success());

    let out = scd(&[
        "train", "--data", data_s, "--features", "80", "--backend", "syscd", "--threads", "4",
        "--buckets", "16", "--merge-every", "1", "--host-threads", "2", "--epochs", "20",
        "--eval-every", "20",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("SySCD (4 threads)"), "{text}");

    std::fs::remove_file(&data).ok();
}

#[test]
fn objective_flag_errors_are_clean() {
    // Every user-reachable misuse of --objective must come back as a
    // one-line stderr message and a nonzero exit, never a panic.
    let data = tmp("obj_err_data.svm");
    let data_s = data.to_str().unwrap();
    let out = scd(&[
        "generate", "--kind", "criteo", "--rows", "60", "--fields", "4", "--cardinality", "10",
        "--output", data_s,
    ]);
    assert!(out.status.success());

    let out = scd(&["train", "--data", data_s, "--objective", "mystery"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown --objective \"mystery\""), "{err}");
    assert!(err.contains("ridge|logistic|svm|lasso|elastic-net"), "{err}");

    let out = scd(&["train", "--data", data_s, "--objective", "svm", "--form", "primal"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("objective svm does not support the primal form"), "{err}");

    let out = scd(&["train", "--data", data_s, "--l1-ratio", "0.5"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--l1-ratio only applies to --objective elastic-net"), "{err}");

    let model = tmp("obj_err_model.txt");
    let out = scd(&[
        "train", "--data", data_s, "--objective", "elastic-net", "--save-model",
        model.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("--save-model supports --objective ridge|logistic|svm|lasso"),
        "{err}"
    );

    let out = scd(&["train", "--data", data_s, "--backend", "asyscd", "--objective", "svm", "--form", "dual"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("asyscd supports only --form primal"), "{err}");

    let out = scd(&["train", "--data", data_s, "--backend", "asyscd", "--objective", "svm", "--form", "primal"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("objective svm does not support the primal form"), "{err}");

    std::fs::remove_file(&data).ok();
}

#[test]
fn svm_objective_trains_distributed_and_reports_rate() {
    let data = tmp("obj_svm_data.svm");
    let data_s = data.to_str().unwrap();
    let out = scd(&[
        "generate", "--kind", "criteo", "--rows", "160", "--fields", "5", "--cardinality", "16",
        "--output", data_s,
    ]);
    assert!(out.status.success());

    let out = scd(&[
        "train", "--data", data_s, "--features", "80", "--objective", "svm", "--workers", "4",
        "--aggregation", "adaptive", "--wire", "topk-ef:64", "--epochs", "10", "--eval-every", "5",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("svm objective"), "{text}");
    assert!(text.contains("acc "), "classification runs must report accuracy: {text}");
    assert!(
        text.contains("convergence rate:") || text.contains("gap reached 0 at epoch"),
        "rate report missing: {text}"
    );

    std::fs::remove_file(&data).ok();
}

/// The `final gap {:.17e}` line from a train run.
fn final_gap(out: &Output) -> String {
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .find(|l| l.starts_with("final gap"))
        .expect("final gap line")
        .to_string()
}

/// stderr must be exactly one `error:` line — no panic, no backtrace.
fn assert_one_line_error(out: &Output, needle: &str) {
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert_eq!(err.lines().count(), 1, "expected a one-line error, got: {err}");
    assert!(err.starts_with("error:"), "{err}");
    assert!(err.contains(needle), "missing {needle:?}: {err}");
}

#[test]
fn shard_workflow_trains_bit_identically_to_in_memory() {
    let dir = tmp("shard_wf_dir");
    let file = tmp("shard_wf.svm");
    let (dir_s, file_s) = (dir.to_str().unwrap(), file.to_str().unwrap());
    std::fs::remove_dir_all(&dir).ok();

    // Chunk small relative to the dataset: the writer's high-water
    // honestly counts the persistent serialization scratch (about one
    // extra chunk), so the 4x streaming margin needs several chunks of
    // rows on disk.
    let out = scd(&[
        "shard", "gen", "--out", dir_s, "--kind", "criteo", "--rows", "160", "--fields", "5",
        "--cardinality", "16", "--seed", "11", "--chunk-rows", "16",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("sharded criteo: rows=160 cols=80"), "{text}");

    // The writer streamed: the dataset on disk is at least 4x anything it
    // ever held buffered (chunked generation, not materialize-then-write).
    let field = |t: &str, k: &str| -> u64 {
        t.lines()
            .find(|l| l.starts_with(k))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("missing {k}: {t}"))
    };
    let disk = field(&text, "on-disk bytes:");
    let high_water = field(&text, "writer high-water bytes:");
    assert!(
        disk >= 4 * high_water,
        "disk {disk} < 4x writer high-water {high_water}"
    );

    let out = scd(&["shard", "inspect", "--data", dir_s, "--verify", "yes"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("checksums verified"), "{text}");

    // Same rows as LIBSVM text for the in-memory path.
    let out = scd(&[
        "generate", "--kind", "criteo", "--rows", "160", "--fields", "5", "--cardinality", "16",
        "--seed", "11", "--output", file_s,
    ]);
    assert!(out.status.success());

    // Bit-identity, single node and the paper's K=4 cluster.
    for workers in ["1", "4"] {
        let mut mem_args = vec![
            "train", "--data", file_s, "--features", "80", "--form", "dual", "--workers",
            workers, "--epochs", "4", "--eval-every", "4",
        ];
        if workers != "1" {
            mem_args.extend(["--partition", "contiguous"]);
        }
        let mem = final_gap(&scd(&mem_args));
        let store = final_gap(&scd(&[
            "train", "--data", dir_s, "--form", "dual", "--workers", workers, "--epochs", "4",
            "--eval-every", "4",
        ]));
        assert_eq!(mem, store, "K={workers} shard training diverged from in-memory");
    }

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_file(&file).ok();
}

#[test]
fn store_misuse_exits_with_clean_one_line_errors() {
    let dir = tmp("shard_err_dir");
    let dir_s = dir.to_str().unwrap();
    std::fs::remove_dir_all(&dir).ok();
    let out = scd(&[
        "shard", "gen", "--out", dir_s, "--kind", "criteo", "--rows", "80", "--fields", "4",
        "--cardinality", "10", "--chunk-rows", "32",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Generator flags never combine with a shard directory.
    assert_one_line_error(&scd(&["train", "--data", dir_s, "--fields", "4"]), "unknown option");
    assert_one_line_error(
        &scd(&["train", "--data", dir_s, "--features", "40"]),
        "not shard directories",
    );
    // Nonexistent and invalid paths.
    assert_one_line_error(&scd(&["train", "--data", "/nonexistent/shards"]), "cannot open");
    let empty = tmp("shard_empty_dir");
    std::fs::create_dir_all(&empty).unwrap();
    assert_one_line_error(
        &scd(&["train", "--data", empty.to_str().unwrap()]),
        "index.scds",
    );
    assert_one_line_error(
        &scd(&["shard", "inspect", "--data", "/nonexistent/shards"]),
        "cannot open shard directory",
    );

    // A flipped payload byte is caught by checksums, as a clean error,
    // from both inspect --verify and train.
    let chunk = dir.join("chunk-00001.scdc");
    let mut bytes = std::fs::read(&chunk).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&chunk, &bytes).unwrap();
    assert_one_line_error(
        &scd(&["shard", "inspect", "--data", dir_s, "--verify", "yes"]),
        "checksum mismatch",
    );
    assert_one_line_error(
        &scd(&["train", "--data", dir_s, "--form", "dual"]),
        "checksum mismatch",
    );
    // Truncation is caught already at open.
    let len = std::fs::metadata(&chunk).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&chunk).unwrap();
    f.set_len(len - 9).unwrap();
    drop(f);
    assert_one_line_error(&scd(&["shard", "inspect", "--data", dir_s]), "truncated");

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&empty).ok();
}

#[test]
fn host_threads_sizes_the_shared_scheduler() {
    // A fresh process, so --host-threads can claim the process-wide
    // scheduler; the distributed GPU run then schedules on 2 host threads.
    let data = tmp("ht_data.svm");
    let data_s = data.to_str().unwrap();
    let out = scd(&[
        "generate", "--kind", "webspam", "--rows", "80", "--cols", "60", "--nnz-per-row", "6",
        "--scale", "0.3", "--output", data_s,
    ]);
    assert!(out.status.success());

    let out = scd(&[
        "train", "--data", data_s, "--features", "60", "--workers", "2", "--solver",
        "tpa-m4000", "--host-threads", "2", "--epochs", "5", "--eval-every", "5",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("K=2"), "{text}");

    let out = scd(&["train", "--data", data_s, "--features", "60", "--host-threads", "nope"]);
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr).unwrap().contains("expected integer"));

    std::fs::remove_file(&data).ok();
}

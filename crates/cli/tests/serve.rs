//! End-to-end tests of the serving surface: a real `scd serve` process
//! on real pipes (JSON round-trips, malformed input, hot swap via
//! `reload` and via live training) and `scd score` batch mode over both
//! LIBSVM files and `scd shard gen` directories.

use scd_serve::json::Json;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdout, Command, Output, Stdio};

fn scd(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_scd"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("scd_serve_{name}_{}", std::process::id()))
}

/// An interactive `scd serve` session over pipes. Responses are flushed
/// per line, so lock-step request/response never deadlocks.
struct Session {
    child: Child,
    reader: BufReader<ChildStdout>,
}

impl Session {
    fn spawn(args: &[&str]) -> Session {
        let mut child = Command::new(env!("CARGO_BIN_EXE_scd"))
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("serve spawns");
        let reader = BufReader::new(child.stdout.take().expect("stdout piped"));
        Session { child, reader }
    }

    /// Send one request line, read one response line, parse it as JSON.
    fn request(&mut self, line: &str) -> Json {
        let stdin = self.child.stdin.as_mut().expect("stdin piped");
        writeln!(stdin, "{line}").expect("request written");
        stdin.flush().expect("request flushed");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("response read");
        assert!(response.ends_with('\n'), "response not a full line: {response:?}");
        Json::parse(response.trim()).unwrap_or_else(|e| panic!("bad JSON {response:?}: {e}"))
    }

    /// Close stdin and wait for a clean exit.
    fn close(mut self) {
        drop(self.child.stdin.take());
        let status = self.child.wait().expect("serve exits");
        assert!(status.success(), "serve exited with {status}");
    }
}

fn seq_of(response: &Json) -> u64 {
    response.get("model_seq").and_then(Json::as_f64).expect("model_seq") as u64
}

fn decisions_of(response: &Json) -> Vec<f64> {
    response
        .get("decisions")
        .and_then(Json::as_arr)
        .expect("decisions")
        .iter()
        .map(|d| d.as_f64().unwrap())
        .collect()
}

/// Generate a dataset and train a model file for it; returns the paths.
fn trained_model(name: &str, extra_train: &[&str]) -> (PathBuf, PathBuf) {
    let data = tmp(&format!("{name}_data.svm"));
    let model = tmp(&format!("{name}_model.txt"));
    let out = scd(&[
        "generate", "--kind", "webspam", "--rows", "120", "--cols", "50", "--nnz-per-row", "6",
        "--scale", "0.3", "--output", data.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let mut args = vec![
        "train", "--data", data.to_str().unwrap(), "--features", "50", "--lambda", "0.01",
        "--epochs", "30", "--eval-every", "30", "--save-model", model.to_str().unwrap(),
    ];
    args.extend_from_slice(extra_train);
    let out = scd(&args);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    (data, model)
}

#[test]
fn serve_round_trips_json_and_survives_malformed_requests() {
    let (data, model) = trained_model("rt", &[]);
    let mut session = Session::spawn(&["serve", "--model", model.to_str().unwrap()]);

    // info: the file was published as snapshot 1.
    let info = session.request("{\"op\":\"info\"}");
    assert_eq!(info.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(seq_of(&info), 1);
    assert_eq!(info.get("features").and_then(Json::as_f64), Some(50.0));
    assert_eq!(info.get("objective").and_then(Json::as_str), Some("ridge"));

    // score: two sparse rows come back in order.
    let scored = session.request("{\"op\":\"score\",\"rows\":[[[0,1.0],[3,-2.0]],[[49,0.5]]]}");
    assert_eq!(scored.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(decisions_of(&scored).len(), 2);

    // Malformed requests answer clean errors — not a panic, not an exit.
    for bad in [
        "this is not json",
        "{\"op\":\"warp\"}",
        "{\"op\":\"score\",\"rows\":[[[999,1.0]]]}",
        "{\"op\":\"score\",\"rows\":\"nope\"}",
    ] {
        let err = session.request(bad);
        assert_eq!(err.get("ok"), Some(&Json::Bool(false)), "{bad}");
        assert!(err.get("error").and_then(Json::as_str).is_some(), "{bad}");
    }

    // The session still serves after every error.
    let again = session.request("{\"op\":\"score\",\"rows\":[[[1,1.0]]]}");
    assert_eq!(again.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(seq_of(&again), 1);

    session.close();
    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&model).ok();
}

#[test]
fn reload_hot_swaps_the_model_mid_session() {
    let (data, model) = trained_model("swap", &[]);
    let mut session = Session::spawn(&["serve", "--model", model.to_str().unwrap()]);

    let row = "{\"op\":\"score\",\"rows\":[[[0,1.0],[7,2.0],[21,-1.0]]]}";
    let before = session.request(row);
    assert_eq!(seq_of(&before), 1);

    // Retrain the file on disk (different regularization → different
    // weights) while the session keeps running, then swap it in.
    let out = scd(&[
        "train", "--data", data.to_str().unwrap(), "--features", "50", "--lambda", "1.0",
        "--epochs", "30", "--eval-every", "30", "--save-model", model.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let reloaded = session.request("{\"op\":\"reload\"}");
    assert_eq!(reloaded.get("ok"), Some(&Json::Bool(true)), "{reloaded:?}");
    assert_eq!(reloaded.get("reloaded"), Some(&Json::Bool(true)));
    assert_eq!(seq_of(&reloaded), 2);

    // The same request now scores against the swapped model.
    let after = session.request(row);
    assert_eq!(seq_of(&after), 2);
    assert_ne!(
        decisions_of(&before),
        decisions_of(&after),
        "λ 0.01 → 1.0 must change the decision"
    );

    session.close();
    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&model).ok();
}

#[test]
fn live_training_publishes_rounds_into_the_session() {
    let data = tmp("live_data.svm");
    let out = scd(&[
        "generate", "--kind", "webspam", "--rows", "150", "--cols", "60", "--nnz-per-row", "6",
        "--scale", "0.3", "--output", data.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    const ROUNDS: u64 = 8;
    let mut session = Session::spawn(&[
        "serve", "--train-data", data.to_str().unwrap(), "--workers", "2", "--epochs", "8",
        "--lambda", "0.01", "--seed", "7",
    ]);
    // The parameter server publishes one snapshot per round; info must
    // report a monotone sequence that ends at the final round.
    let mut last = 0u64;
    for _ in 0..10_000 {
        let info = session.request("{\"op\":\"info\"}");
        assert_eq!(info.get("ok"), Some(&Json::Bool(true)));
        let seq = seq_of(&info);
        assert!(seq >= 1, "serving started before the first publish");
        assert!(seq >= last, "model_seq went backwards: {last} -> {seq}");
        assert!(seq <= ROUNDS, "more publishes than rounds: {seq}");
        last = seq;
        if seq == ROUNDS {
            break;
        }
    }
    assert_eq!(last, ROUNDS, "never observed the final round's model");

    // Scoring works against the final snapshot.
    let scored = session.request("{\"op\":\"score\",\"rows\":[[[0,1.0]]]}");
    assert_eq!(scored.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(seq_of(&scored), ROUNDS);
    // reload is a file-serving op; live sessions reject it cleanly.
    let err = session.request("{\"op\":\"reload\"}");
    assert_eq!(err.get("ok"), Some(&Json::Bool(false)));

    session.close();
    std::fs::remove_file(&data).ok();
}

#[test]
fn score_streams_a_shard_directory_in_batches() {
    let dir = tmp("score_shards");
    let model = tmp("score_shards_model.txt");
    std::fs::remove_dir_all(&dir).ok();
    let out = scd(&[
        "shard", "gen", "--out", dir.to_str().unwrap(), "--kind", "webspam", "--rows", "90",
        "--cols", "40", "--nnz-per-row", "5", "--chunk-rows", "32", "--seed", "3",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = scd(&[
        "train", "--data", dir.to_str().unwrap(), "--lambda", "0.01", "--epochs", "20",
        "--eval-every", "20", "--save-model", model.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = scd(&[
        "score", "--model", model.to_str().unwrap(), "--data", dir.to_str().unwrap(),
        "--batch", "16", "--limit", "40",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 41, "40 rows + summary: {text}");
    for (i, line) in lines[..40].iter().enumerate() {
        let row = Json::parse(line).unwrap_or_else(|e| panic!("row {i} bad JSON {line:?}: {e}"));
        assert_eq!(row.get("row").and_then(Json::as_f64), Some(i as f64));
        assert!(row.get("decision").and_then(Json::as_f64).is_some(), "{line}");
        assert!(row.get("prediction").and_then(Json::as_f64).is_some(), "{line}");
        assert!(row.get("label").is_some(), "{line}");
    }
    let summary = Json::parse(lines[40]).expect("summary is JSON");
    assert_eq!(summary.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(summary.get("rows").and_then(Json::as_f64), Some(40.0));
    assert_eq!(summary.get("batches").and_then(Json::as_f64), Some(3.0));
    assert!(summary.get("mse").and_then(Json::as_f64).is_some());

    // Scoring the whole store agrees with the full-dataset predict path.
    let out = scd(&["score", "--model", model.to_str().unwrap(), "--data", dir.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let summary = Json::parse(text.lines().last().unwrap()).unwrap();
    assert_eq!(summary.get("rows").and_then(Json::as_f64), Some(90.0));

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_file(&model).ok();
}

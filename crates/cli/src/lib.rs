//! `scd` — the command-line front-end to the TPA-SCD reproduction.
//!
//! Three subcommands cover the zero-to-trained workflow:
//!
//! * `scd generate` — write a synthetic webspam-/criteo-shaped (or dense)
//!   dataset in LIBSVM format.
//! * `scd info` — dataset statistics for any LIBSVM file.
//! * `scd train` — ridge (any engine: sequential, A-SCD, PASSCoDe-Wild,
//!   AsySCD, TPA-SCD on either simulated GPU, or a distributed cluster with
//!   any aggregation rule), SVM, logistic regression, or the elastic net.
//!
//! Run `scd help` for the full option reference.

pub mod args;
pub mod commands;

pub use args::{ArgError, Args};

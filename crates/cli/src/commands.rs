//! The `scd` subcommands: `generate`, `info`, `train`, `predict`,
//! `serve`, `score`, `sweep`, `shard`, `help`.
//!
//! Every command takes parsed [`Args`] and a writer (so tests can capture
//! output) and returns a descriptive error string on failure.

use crate::args::Args;
use gpu_sim::{Gpu, GpuProfile};
use scd_core::extensions::ElasticNetCd;
use scd_core::{
    AsyScd, AsyncCpuMode, AsyncSimScd, ConvergenceRecorder, Form, ObjectiveKind,
    RegularizationPath, RidgeProblem, SequentialScd, Solver, SyscdScd, TpaScd, TrainedModel,
};
use scd_datasets::{criteo_like, dense_gaussian, scale_values, webspam_like, DatasetStats};
use scd_datasets::{CriteoSpec, WebspamStreamSpec};
use scd_distributed::{
    Aggregation, AsyncScd, DistributedConfig, DistributedScd, FaultPlan, LocalSolverKind,
    ParamServerConfig, ParamServerScd, PartitionStrategy, RoundRuntime, Staleness, WireFormat,
};
use scd_serve::json::{escape, Json};
use scd_serve::{respond, BatchScorer, ModelSlot, Response, Scored};
use scd_sparse::io::{read_libsvm, write_libsvm, LabelledData};
use scd_sparse::CsrMatrix;
use scd_store::{write_criteo, write_webspam, ShardedDataset};
use std::fs::File;
use std::io::{BufRead, Write};
use std::path::Path;
use std::sync::Arc;

/// Top-level dispatch.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    if args.get("help").is_some() {
        help(out);
        return Ok(());
    }
    // Only `shard` takes a positional action (`gen`/`inspect`).
    if args.command != "shard" {
        args.reject_action().map_err(|e| e.to_string())?;
    }
    match args.command.as_str() {
        "generate" => generate(args, out),
        "info" => info(args, out),
        "train" => train(args, out),
        "predict" => predict(args, out),
        "serve" => serve(args, out),
        "score" => score(args, out),
        "sweep" => sweep(args, out),
        "shard" => shard(args, out),
        "help" => {
            help(out);
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?} (try `scd help`)")),
    }
}

/// Print usage.
pub fn help(out: &mut dyn Write) {
    let _ = writeln!(
        out,
        "scd — stochastic coordinate descent trainer (TPA-SCD reproduction)

USAGE:
  scd generate --kind webspam|criteo|dense --output FILE [options]
  scd info     --data FILE [--features M] [--detail yes]
  scd train    --data FILE|DIR [options]
  scd predict  --model FILE --data FILE [--features M]
  scd serve    --model FILE | --train-data FILE|DIR [options]
  scd score    --model FILE --data FILE|DIR [--batch B] [--limit N]
  scd sweep    --data FILE [--lambda-max L --lambda-ratio R --points P]
  scd shard gen     --out DIR --kind criteo|webspam [options]
  scd shard inspect --data DIR [--verify yes]
  scd help

GENERATE OPTIONS:
  --rows N          examples                      (default 1000)
  --cols M          features (webspam/dense)      (default 2000)
  --nnz-per-row K   nonzero draws per row         (default 30)
  --fields F        categorical fields (criteo)   (default 10)
  --cardinality C   values per field (criteo)     (default 100)
  --scale S         multiply all values by S      (default 1.0)
  --seed S          RNG seed                      (default 42)

SHARD OPTIONS (gen writes an out-of-core sharded dataset, inspect reads one):
  --out DIR         shard directory to create          (gen, required)
  --kind K          criteo|webspam                     (default criteo)
  --rows N          examples                           (default 100000)
  --fields F        categorical fields (criteo)        (default 10)
  --cardinality C   values per field (criteo)          (default 100)
  --cols M          features (webspam)                 (default 2000)
  --nnz-per-row K   nonzero draws per row (webspam)    (default 30)
  --chunk-rows R    rows per chunk file                (default 65536)
  --seed S          RNG seed                           (default 42)
  --verify yes      inspect only: re-checksum every chunk payload

TRAIN OPTIONS:
  --data P          a LIBSVM file, or a `scd shard gen` directory (trains
                    out-of-core shards; bit-identical to the in-memory path)
  --features M      fix the feature-space width of the LIBSVM file
  --objective O     ridge|logistic|svm|lasso|elastic-net (default ridge;
                    all but elastic-net run on every backend and distributed)
  --lambda L        regularization                (default 0.001)
  --l1-ratio R      elastic-net mix rho           (default 0.5; elastic-net only)
  --form F          primal|dual (default: the objective's natural form —
                    primal for ridge/lasso, dual for logistic/svm)
  --backend B       seq|a-scd|wild|asyscd|syscd|tpa-m4000|tpa-titanx (default seq;
                    --solver is the legacy alias — pass one or the other)
  --threads T       modeled threads for a-scd/wild; worker replicas for syscd
                    (default 16)
  --buckets B       syscd only: coordinates per bucket (default 16 = one cache
                    line of f32 model state; the unit of work assignment)
  --merge-every K   syscd only: buckets each worker processes between replica
                    merges (default: auto, ~4 merges per worker per epoch;
                    larger = fewer merges, more staleness)
  --host-threads T  host threads in the shared work-stealing scheduler
                    (0 = auto-size to this machine's cores; the scheduler is
                    process-wide, so the first train in a process fixes it)
  --step E          AsySCD step size              (default 1.0)
  --epochs E        epochs to run                 (default 50)
  --eval-every K    print the gap every K epochs  (default 10)
  --target-gap G    stop once duality gap <= G
  --workers K       distribute across K workers   (default 1 = single node)
  --partition P     contiguous|roundrobin|random coordinate partitioning
                    (default: seed-derived random; shard directories are
                    row-major, so they default to — and require — contiguous)
  --aggregation A   averaging|adding|adaptive|cocoa+|line-search (default averaging)
  --wire W          raw|fp16|topk:<k>|topk-ef:<k> delta wire format (default raw)
  --round-threads T host threads running worker rounds (0 = auto, 1 = inline)
  --runtime R       sync|event round engine (default sync; event = discrete-event
                    simulation with bounded staleness; implied by --staleness)
  --staleness T     staleness bound for --runtime event: integer or inf
                    (default 0 = synchronous barrier, bit-identical to sync)
  --event-trace F   write the event runtime's per-event trace to F
  --fault-drop P    probability a worker's round is dropped (default 0)
  --fault-delay P   probability a round is delayed (default 0)
  --fault-delay-factor F  slowdown of a delayed round (default 3)
  --fault-timeout S drop rounds slower than S simulated seconds
  --fault-retries N re-request a lost round N times (default 1)
  --fault-seed S    fault-schedule RNG seed       (default 0)
  --round-metrics F write per-round metrics JSON to F (distributed only)
  --save-model F    write the trained weights to F (any objective except
                    elastic-net)
  --seed S          RNG seed                      (default 1)

SERVE OPTIONS (JSON-lines session: one request per stdin line, one response
per stdout line; ops: {{\"op\":\"info\"}}, {{\"op\":\"score\",\"rows\":[[[idx,val],..],..]}},
and — when serving from --model — {{\"op\":\"reload\"}} to hot-swap from disk):
  --model F         serve a saved model file
  --train-data P    train live while serving: a parameter server publishes
                    into the serving slot at every round boundary
  --objective O     ridge|logistic|svm|lasso      (live mode; default ridge)
  --lambda L        regularization                (live mode; default 0.001)
  --workers K       parameter-server workers      (live mode; default 4)
  --epochs E        training rounds to publish    (live mode; default 50)
  --features M      feature width of a LIBSVM --train-data file
  --seed S          RNG seed                      (live mode; default 1)

SCORE OPTIONS (batch mode: one JSON line per row, then a JSON summary line):
  --model F         saved model file (any objective)
  --data P          a LIBSVM file or a `scd shard gen` directory
  --batch B         rows per scoring batch        (default 64)
  --limit N         score only the first N rows   (default: all)
  --features M      fix the feature width of a LIBSVM file"
    );
}

fn load(args: &Args) -> Result<LabelledData, String> {
    let path = args.require("data").map_err(|e| e.to_string())?;
    let features = args
        .get("features")
        .map(|v| {
            v.parse::<usize>()
                .map_err(|_| format!("--features {v:?}: expected integer"))
        })
        .transpose()?;
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    read_libsvm(file, features).map_err(|e| format!("cannot parse {path}: {e}"))
}

/// `scd generate`: write a synthetic dataset in LIBSVM format.
pub fn generate(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    args.check_known(&[
        "kind", "output", "rows", "cols", "nnz-per-row", "fields", "cardinality", "scale", "seed",
    ])
    .map_err(|e| e.to_string())?;
    let kind = args.require("kind").map_err(|e| e.to_string())?;
    let output = args.require("output").map_err(|e| e.to_string())?;
    let rows = args.get_or("rows", 1000usize, "integer").map_err(|e| e.to_string())?;
    let cols = args.get_or("cols", 2000usize, "integer").map_err(|e| e.to_string())?;
    let seed = args.get_or("seed", 42u64, "integer").map_err(|e| e.to_string())?;
    let scale = args.get_or("scale", 1.0f32, "number").map_err(|e| e.to_string())?;

    let data = match kind {
        "webspam" => {
            let nnz = args
                .get_or("nnz-per-row", 30usize, "integer")
                .map_err(|e| e.to_string())?;
            webspam_like(rows, cols, nnz, seed)
        }
        "criteo" => {
            let fields = args.get_or("fields", 10usize, "integer").map_err(|e| e.to_string())?;
            let cardinality = args
                .get_or("cardinality", 100usize, "integer")
                .map_err(|e| e.to_string())?;
            criteo_like(rows, fields, cardinality, seed)
        }
        "dense" => dense_gaussian(rows, cols, seed),
        other => return Err(format!("unknown --kind {other:?} (webspam|criteo|dense)")),
    };
    let data = if scale != 1.0 { scale_values(&data, scale) } else { data };
    let file = File::create(output).map_err(|e| format!("cannot create {output}: {e}"))?;
    write_libsvm(&data, file).map_err(|e| format!("cannot write {output}: {e}"))?;
    writeln!(out, "wrote {}: {}", output, DatasetStats::of(&data)).map_err(|e| e.to_string())
}

/// `scd info`: dataset statistics (`--detail yes` adds the structural
/// profile: nnz distributions, skew, ELLPACK padding).
pub fn info(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    args.check_known(&["data", "features", "detail"]).map_err(|e| e.to_string())?;
    let data = load(args)?;
    writeln!(out, "{}", DatasetStats::of(&data)).map_err(|e| e.to_string())?;
    if args.get("detail").is_some() {
        let profile = scd_sparse::StructureProfile::of(&data.matrix.to_csr());
        writeln!(out, "{profile}").map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// `scd shard`: out-of-core sharded datasets (`gen` writes, `inspect` reads).
pub fn shard(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    match args.action.as_deref() {
        Some("gen") => shard_gen(args, out),
        Some("inspect") => shard_inspect(args, out),
        Some(other) => Err(format!("unknown shard action {other:?} (gen|inspect)")),
        None => Err("shard needs an action: `scd shard gen ...` or `scd shard inspect ...`".into()),
    }
}

/// `scd shard gen`: stream a synthetic dataset to disk in bounded memory.
fn shard_gen(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    args.check_known(&[
        "out", "kind", "rows", "cols", "nnz-per-row", "fields", "cardinality", "chunk-rows",
        "seed",
    ])
    .map_err(|e| e.to_string())?;
    let dir = args.require("out").map_err(|e| e.to_string())?;
    let kind = args.get("kind").unwrap_or("criteo");
    let rows = args.get_or("rows", 100_000usize, "integer").map_err(|e| e.to_string())?;
    let chunk_rows = args
        .get_or("chunk-rows", 65_536usize, "integer")
        .map_err(|e| e.to_string())?;
    let seed = args.get_or("seed", 42u64, "integer").map_err(|e| e.to_string())?;
    // The specs assert on empty dimensions; turn misuse into errors first.
    if rows == 0 || chunk_rows == 0 {
        return Err("--rows and --chunk-rows must be >= 1".into());
    }
    let summary = match kind {
        "criteo" => {
            let fields = args.get_or("fields", 10usize, "integer").map_err(|e| e.to_string())?;
            let cardinality = args
                .get_or("cardinality", 100usize, "integer")
                .map_err(|e| e.to_string())?;
            if fields == 0 || cardinality == 0 {
                return Err("--fields and --cardinality must be >= 1".into());
            }
            write_criteo(Path::new(dir), &CriteoSpec::new(rows, fields, cardinality, seed), chunk_rows)
        }
        "webspam" => {
            let cols = args.get_or("cols", 2000usize, "integer").map_err(|e| e.to_string())?;
            let nnz = args
                .get_or("nnz-per-row", 30usize, "integer")
                .map_err(|e| e.to_string())?;
            if cols == 0 || nnz == 0 {
                return Err("--cols and --nnz-per-row must be >= 1".into());
            }
            write_webspam(Path::new(dir), &WebspamStreamSpec::new(rows, cols, nnz, seed), chunk_rows)
        }
        other => return Err(format!("unknown --kind {other:?} (criteo|webspam)")),
    }
    .map_err(|e| format!("cannot write shards to {dir}: {e}"))?;
    writeln!(
        out,
        "sharded {kind}: rows={} cols={} nnz={} chunks={}",
        summary.rows, summary.cols, summary.nnz, summary.chunks
    )
    .map_err(|e| e.to_string())?;
    writeln!(out, "on-disk bytes: {}", summary.disk_bytes).map_err(|e| e.to_string())?;
    writeln!(out, "writer high-water bytes: {}", summary.buffered_high_water)
        .map_err(|e| e.to_string())
}

/// `scd shard inspect`: index summary and per-shard table.
fn shard_inspect(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    args.check_known(&["data", "verify"]).map_err(|e| e.to_string())?;
    let dir = args.require("data").map_err(|e| e.to_string())?;
    let store = open_store(dir)?;
    writeln!(
        out,
        "shards: rows={} cols={} nnz={} chunks={}",
        store.rows(),
        store.cols(),
        store.nnz(),
        store.num_shards()
    )
    .map_err(|e| e.to_string())?;
    writeln!(out, "{:>6} {:>12} {:>10} {:>12} {:>12}", "shard", "first-row", "rows", "nnz", "bytes")
        .map_err(|e| e.to_string())?;
    for i in 0..store.num_shards() {
        let meta = store.meta(i);
        writeln!(
            out,
            "{i:>6} {:>12} {:>10} {:>12} {:>12}",
            store.shard_rows(i).start,
            meta.rows,
            meta.nnz,
            meta.file_bytes
        )
        .map_err(|e| e.to_string())?;
    }
    if args.get("verify").is_some() {
        store.verify().map_err(|e| format!("verification failed: {e}"))?;
        writeln!(out, "all {} chunk checksums verified", store.num_shards())
            .map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn open_store(dir: &str) -> Result<ShardedDataset, String> {
    ShardedDataset::open(Path::new(dir))
        .map_err(|e| format!("cannot open shard directory {dir}: {e}"))
}

/// `--form` if given; `None` lets the objective pick its natural form.
fn parse_form(args: &Args) -> Result<Option<Form>, String> {
    match args.get("form") {
        None => Ok(None),
        Some("primal") => Ok(Some(Form::Primal)),
        Some("dual") => Ok(Some(Form::Dual)),
        Some(other) => Err(format!("unknown --form {other:?} (primal|dual)")),
    }
}

/// `--partition` if given; `None` keeps the config's seed-derived default.
fn parse_partition(
    args: &Args,
    config: &DistributedConfig,
) -> Result<Option<PartitionStrategy>, String> {
    Ok(match args.get("partition") {
        None => None,
        Some("contiguous") => Some(PartitionStrategy::Contiguous),
        Some("roundrobin") => Some(PartitionStrategy::RoundRobin),
        // The explicit spelling of the default: seed-derived random.
        Some("random") => Some(config.partition_strategy()),
        Some(other) => {
            return Err(format!(
                "unknown --partition {other:?} (contiguous|roundrobin|random)"
            ))
        }
    })
}

fn parse_wire(args: &Args) -> Result<WireFormat, String> {
    match args.get("wire") {
        None => Ok(WireFormat::Raw),
        Some(s) => WireFormat::parse(s),
    }
}

fn parse_aggregation(args: &Args) -> Result<Aggregation, String> {
    match args.get("aggregation").unwrap_or("averaging") {
        "averaging" => Ok(Aggregation::Averaging),
        "adding" => Ok(Aggregation::Adding),
        "adaptive" => Ok(Aggregation::Adaptive),
        "cocoa+" => Ok(Aggregation::CocoaPlus),
        "line-search" => Ok(Aggregation::LineSearch),
        other => Err(format!(
            "unknown --aggregation {other:?} (averaging|adding|adaptive|cocoa+|line-search)"
        )),
    }
}

/// The single-node backend registry, quoted in every unknown-value error.
const BACKENDS: &str = "seq|a-scd|wild|asyscd|syscd|tpa-m4000|tpa-titanx";

/// Resolve `--backend` (preferred) or its legacy alias `--solver` to
/// `(flag name used, value)`, rejecting contradictory duplicates.
fn backend_choice(args: &Args) -> Result<(&'static str, &str), String> {
    match (args.get("backend"), args.get("solver")) {
        (Some(b), Some(s)) if b != s => {
            Err("--backend and --solver are aliases; pass only one".into())
        }
        (Some(b), _) => Ok(("backend", b)),
        (None, Some(s)) => Ok(("solver", s)),
        (None, None) => Ok(("backend", "seq")),
    }
}

fn single_node_solver(
    args: &Args,
    problem: &RidgeProblem,
    form: Form,
    objective: ObjectiveKind,
    seed: u64,
) -> Result<Box<dyn Solver>, String> {
    let threads = args.get_or("threads", 16usize, "integer").map_err(|e| e.to_string())?;
    let (flag, backend) = backend_choice(args)?;
    Ok(match backend {
        "seq" => Box::new(
            match form {
                Form::Primal => SequentialScd::primal(problem, seed),
                Form::Dual => SequentialScd::dual(problem, seed),
            }
            .with_objective(objective),
        ),
        "a-scd" => Box::new(
            AsyncSimScd::new(problem, form, AsyncCpuMode::Atomic, threads, seed)
                .with_objective(objective),
        ),
        "wild" => Box::new(
            AsyncSimScd::new(problem, form, AsyncCpuMode::Wild, threads, seed)
                .with_objective(objective),
        ),
        "asyscd" => {
            if form != Form::Primal {
                return Err(format!("--{flag} asyscd supports only --form primal"));
            }
            let step = args.get_or("step", 1.0f64, "number").map_err(|e| e.to_string())?;
            let solver = AsyScd::new(problem, step, seed)
                .map_err(|e| e.to_string())?
                .with_objective(problem, objective)
                .map_err(|e| e.to_string())?;
            Box::new(solver)
        }
        "syscd" => {
            let buckets = args
                .get_or("buckets", scd_core::syscd::DEFAULT_BUCKET_SIZE, "integer")
                .map_err(|e| e.to_string())?;
            let merge_every: Option<usize> = match args.get("merge-every") {
                Some(_) => Some(args.get_or("merge-every", 1usize, "integer").map_err(|e| e.to_string())?),
                None => None,
            };
            if buckets == 0 {
                return Err("--buckets must be >= 1".into());
            }
            if merge_every == Some(0) {
                return Err("--merge-every must be >= 1".into());
            }
            let mut solver = SyscdScd::new(problem, form, threads, seed)
                .with_buckets(problem, buckets)
                .with_objective(objective);
            if let Some(k) = merge_every {
                solver = solver.with_merge_every(k);
            }
            Box::new(solver)
        }
        "tpa-m4000" => Box::new(
            TpaScd::new(problem, form, Arc::new(Gpu::new(GpuProfile::quadro_m4000())), seed)
                .map_err(|e| e.to_string())?
                .with_objective(objective),
        ),
        "tpa-titanx" => Box::new(
            TpaScd::new(
                problem,
                form,
                Arc::new(Gpu::new(GpuProfile::titan_x_maxwell())),
                seed,
            )
            .map_err(|e| e.to_string())?
            .with_objective(objective),
        ),
        other => return Err(format!("unknown --{flag} {other:?} (valid: {BACKENDS})")),
    })
}

fn parse_fault(args: &Args) -> Result<FaultPlan, String> {
    let mut plan = FaultPlan::none();
    plan.drop_probability = args.get_or("fault-drop", 0.0f64, "number").map_err(|e| e.to_string())?;
    plan.delay_probability = args.get_or("fault-delay", 0.0f64, "number").map_err(|e| e.to_string())?;
    plan.delay_factor = args
        .get_or("fault-delay-factor", 3.0f64, "number")
        .map_err(|e| e.to_string())?;
    let timeout = args.get_or("fault-timeout", f64::NAN, "number").map_err(|e| e.to_string())?;
    if !timeout.is_nan() {
        plan.timeout_seconds = Some(timeout);
    }
    plan.max_retries = args.get_or("fault-retries", 1usize, "integer").map_err(|e| e.to_string())?;
    plan.seed = args.get_or("fault-seed", 0u64, "integer").map_err(|e| e.to_string())?;
    for (name, p) in [
        ("fault-drop", plan.drop_probability),
        ("fault-delay", plan.delay_probability),
    ] {
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("--{name} {p}: expected a probability in [0, 1]"));
        }
    }
    Ok(plan)
}

fn local_solver_kind(args: &Args) -> Result<LocalSolverKind, String> {
    let threads = args.get_or("threads", 16usize, "integer").map_err(|e| e.to_string())?;
    let (flag, backend) = backend_choice(args)?;
    Ok(match backend {
        "seq" => LocalSolverKind::Sequential,
        "a-scd" => LocalSolverKind::AsyncSim {
            mode: AsyncCpuMode::Atomic,
            threads,
            paper_scale_staleness: true,
        },
        "wild" => LocalSolverKind::AsyncSim {
            mode: AsyncCpuMode::Wild,
            threads,
            paper_scale_staleness: true,
        },
        "tpa-m4000" => LocalSolverKind::Tpa {
            profile: GpuProfile::quadro_m4000(),
            lanes: 64,
            deterministic: true,
        },
        "tpa-titanx" => LocalSolverKind::Tpa {
            profile: GpuProfile::titan_x_maxwell(),
            lanes: 64,
            deterministic: true,
        },
        other => {
            return Err(format!(
                "--{flag} {other:?} cannot run distributed (seq|a-scd|wild|tpa-m4000|tpa-titanx)"
            ))
        }
    })
}

/// `scd train`.
pub fn train(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    args.check_known(&[
        "data", "features", "objective", "lambda", "l1-ratio", "form", "backend", "solver",
        "threads", "buckets", "merge-every", "host-threads", "step", "epochs", "eval-every",
        "target-gap", "workers", "partition", "aggregation", "wire", "round-threads", "runtime",
        "staleness",
        "event-trace", "fault-drop", "fault-delay", "fault-delay-factor", "fault-timeout",
        "fault-retries", "fault-seed", "round-metrics", "save-model", "seed",
    ])
    .map_err(|e| e.to_string())?;
    // The bucket/merge knobs parameterize only the syscd backend; reject
    // them elsewhere so a typo'd invocation fails loudly.
    let (backend_flag, backend) = backend_choice(args)?;
    if backend != "syscd" {
        for knob in ["buckets", "merge-every"] {
            if args.get(knob).is_some() {
                return Err(format!("--{knob} only applies to --{backend_flag} syscd"));
            }
        }
    }
    // Size the process-wide host scheduler before anything can lazily
    // initialize it. 0 = leave it at the auto default.
    let host_threads = args
        .get_or("host-threads", 0usize, "integer")
        .map_err(|e| e.to_string())?;
    if host_threads > 0 {
        scd_sched::configure_global(host_threads)
            .map_err(|e| format!("--host-threads {host_threads}: {e}"))?;
    }
    let lambda = args.get_or("lambda", 1e-3f64, "number").map_err(|e| e.to_string())?;
    let epochs = args.get_or("epochs", 50usize, "integer").map_err(|e| e.to_string())?;
    let eval_every = args.get_or("eval-every", 10usize, "integer").map_err(|e| e.to_string())?.max(1);
    let target_gap = args.get_or("target-gap", f64::NAN, "number").map_err(|e| e.to_string())?;
    let seed = args.get_or("seed", 1u64, "integer").map_err(|e| e.to_string())?;
    // `--data` names either a LIBSVM file or a `scd shard gen` directory.
    let data_path = args.require("data").map_err(|e| e.to_string())?;
    let store = if Path::new(data_path).is_dir() {
        if args.get("features").is_some() {
            return Err("--features applies to LIBSVM files, not shard directories".into());
        }
        Some(open_store(data_path)?)
    } else {
        None
    };
    let problem = match &store {
        Some(store) => {
            let (csr, labels) = store
                .load_all()
                .map_err(|e| format!("cannot load {data_path}: {e}"))?;
            writeln!(
                out,
                "data: sharded N={} M={} nnz={} chunks={}",
                store.rows(),
                store.cols(),
                store.nnz(),
                store.num_shards()
            )
            .map_err(|e| e.to_string())?;
            RidgeProblem::new(csr, labels, lambda).map_err(|e| e.to_string())?
        }
        None => {
            let data = load(args)?;
            writeln!(out, "data: {}", DatasetStats::of(&data)).map_err(|e| e.to_string())?;
            RidgeProblem::from_labelled(&data, lambda).map_err(|e| e.to_string())?
        }
    };

    let objective_name = args.get("objective").unwrap_or("ridge");
    if args.get("l1-ratio").is_some() && objective_name != "elastic-net" {
        return Err("--l1-ratio only applies to --objective elastic-net".into());
    }
    if objective_name == "elastic-net" {
        // Elastic-net keeps its dedicated coordinate-descent engine: its
        // compound prox doesn't fit the per-coordinate Objective contract.
        if args.get("save-model").is_some() {
            return Err(
                "--save-model supports --objective ridge|logistic|svm|lasso; the elastic-net \
                 engine has no saved-model mapping — drop --save-model or pick one of those"
                    .into(),
            );
        }
        let ratio = args.get_or("l1-ratio", 0.5f64, "number").map_err(|e| e.to_string())?;
        let mut en = ElasticNetCd::new(&problem, ratio, seed);
        for epoch in 1..=epochs {
            en.epoch(&problem);
            if epoch % eval_every == 0 || epoch == epochs {
                writeln!(
                    out,
                    "epoch {epoch:>5}  objective {:>12.6e}  zeros {}/{}",
                    en.objective(&problem),
                    en.zero_count(),
                    problem.m()
                )
                .map_err(|e| e.to_string())?;
            }
        }
        return Ok(());
    }
    // Everything else runs through the Objective layer, on any backend.
    let objective = ObjectiveKind::parse(objective_name).map_err(|_| {
        format!("unknown --objective {objective_name:?} (ridge|logistic|svm|lasso|elastic-net)")
    })?;
    let form = parse_form(args)?.unwrap_or_else(|| objective.default_form());
    objective.validate(&problem, form).map_err(|e| e.to_string())?;
    let workers = args.get_or("workers", 1usize, "integer").map_err(|e| e.to_string())?;
    // The distributed drivers stay concrete so their round metrics
    // remain reachable after training.
    let mut distributed: Option<DistributedScd> = None;
    let mut event_driven: Option<AsyncScd> = None;
    let mut single: Option<Box<dyn Solver>> = None;
    if args.get("partition").is_some() && workers <= 1 {
        return Err("--partition needs --workers > 1".into());
    }
    if workers > 1 {
        let round_threads = args
            .get_or("round-threads", 0usize, "integer")
            .map_err(|e| e.to_string())?;
        let mut config = DistributedConfig::new(workers, form)
            .with_objective(objective)
            .with_aggregation(parse_aggregation(args)?)
            .with_solver(local_solver_kind(args)?)
            .with_runtime(RoundRuntime::Concurrent {
                threads: round_threads,
            })
            .with_fault(parse_fault(args)?)
            .with_wire(parse_wire(args)?)
            .with_seed(seed);
        // Shard directories are row-major on disk, so store-backed
        // clusters default to the contiguous strategy they require.
        let strategy = match parse_partition(args, &config)? {
            Some(s) => Some(s),
            None if store.is_some() => Some(PartitionStrategy::Contiguous),
            None => None,
        };
        if let Some(strategy) = strategy {
            config = config.with_strategy(strategy);
        }
        // --staleness implies the event runtime; --runtime sync is
        // the lock-step barrier driver.
        let runtime = args.get("runtime").unwrap_or(if args.get("staleness").is_some() {
            "event"
        } else {
            "sync"
        });
        match runtime {
            "sync" => {
                let dist = match &store {
                    Some(store) => DistributedScd::from_store(&problem, store, &config)
                        .map_err(|e| e.to_string())?,
                    None => DistributedScd::new(&problem, &config).map_err(|e| e.to_string())?,
                };
                distributed = Some(dist);
            }
            "event" if store.is_some() => {
                return Err(
                    "store-backed training supports only --runtime sync (the event engine \
                     partitions in memory)"
                        .into(),
                );
            }
            "event" => {
                let tau = Staleness::parse(args.get("staleness").unwrap_or("0"))?;
                let mut asynch =
                    AsyncScd::new(&problem, &config, tau).map_err(|e| e.to_string())?;
                if args.get("event-trace").is_some() {
                    asynch.set_trace(true);
                }
                event_driven = Some(asynch);
            }
            other => return Err(format!("--runtime {other:?}: expected sync|event")),
        }
    } else {
        single = Some(single_node_solver(args, &problem, form, objective, seed)?);
    }
    // Store-backed clusters report what moving the shards actually cost:
    // real chunk-file bytes priced through the net/PCIe models.
    if store.is_some() {
        if let Some(dist) = distributed.as_ref() {
            let setup = dist.setup_cost();
            writeln!(
                out,
                "data distribution: {} B over {workers} workers (net {:.3e} s, pcie {:.3e} s)",
                setup.total_bytes(),
                setup.network_seconds,
                setup.pcie_seconds
            )
            .map_err(|e| e.to_string())?;
        }
    }
    let solver: &mut dyn Solver = if let Some(dist) = distributed.as_mut() {
        dist
    } else if let Some(asynch) = event_driven.as_mut() {
        asynch
    } else {
        single.as_mut().expect("one branch populated").as_mut()
    };
    writeln!(
        out,
        "solver: {} ({} form, {} objective)",
        solver.name(),
        form.label(),
        objective.label()
    )
    .map_err(|e| e.to_string())?;
    // Classification duals also report training accuracy, scored through
    // the objective's optimality mapping α → β.
    let classification = objective.as_objective().requires_binary_labels();
    let accuracy = |weights: &[f32]| -> f64 {
        let beta = objective.as_objective().induced_primal(&problem, weights);
        let scores = problem.csr().matvec(&beta).expect("induced weights have length M");
        let correct = scores
            .iter()
            .zip(problem.labels())
            .filter(|&(&s, &y)| (s >= 0.0) == (y > 0.0))
            .count();
        correct as f64 / problem.n() as f64
    };
    let mut recorder = ConvergenceRecorder::new();
    recorder.record_initial(solver.duality_gap(&problem));
    for epoch in 1..=epochs {
        let stats = solver.epoch(&problem);
        let gap = solver.duality_gap(&problem);
        recorder.record_epoch(stats.breakdown, gap, 0.0);
        let seconds = recorder.total_seconds();
        if epoch % eval_every == 0 || epoch == epochs || (!target_gap.is_nan() && gap <= target_gap) {
            let mut line = format!("epoch {epoch:>5}  gap {gap:>12.4e}  sim {seconds:>10.4}s");
            if classification {
                let acc = 100.0 * accuracy(&solver.weights());
                line.push_str(&format!("  acc {acc:>6.2}%"));
            }
            writeln!(out, "{line}").map_err(|e| e.to_string())?;
        }
        if !target_gap.is_nan() && gap <= target_gap {
            writeln!(out, "target gap {target_gap:.1e} reached").map_err(|e| e.to_string())?;
            break;
        }
    }
    // Full-precision gap: the line shard-vs-memory bit-identity checks
    // compare (f64 round-trips exactly through 17 significant digits).
    writeln!(out, "final gap {:.17e}", solver.duality_gap(&problem)).map_err(|e| e.to_string())?;
    // Rate-of-convergence report: a gap that hit exact 0 (or went
    // non-finite) is called out by epoch rather than fed into the
    // log-scale fit as log10(0) = −∞.
    if let Some(epoch) = recorder.first_nonpositive_gap() {
        writeln!(out, "gap reached 0 at epoch {epoch}").map_err(|e| e.to_string())?;
    }
    if let Some(rho) = recorder.linear_rate(0.0) {
        writeln!(
            out,
            "convergence rate: gap shrinks {rho:.4}x per epoch (log-linear fit over {} epochs)",
            recorder.epochs()
        )
        .map_err(|e| e.to_string())?;
    }
    if let Some(path) = args.get("save-model") {
        let model = TrainedModel::from_weights(&problem, objective, form, solver.weights());
        let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
        model.save(file).map_err(|e| format!("cannot write {path}: {e}"))?;
        writeln!(
            out,
            "model saved to {path} ({} weights, {} objective)",
            model.features(),
            model.objective.label()
        )
        .map_err(|e| e.to_string())?;
    }
    if let Some(path) = args.get("round-metrics") {
        let (json, rounds, dropped) = if let Some(dist) = distributed.as_ref() {
            let dropped = dist.round_metrics().iter().map(|m| m.dropped_workers.len()).sum();
            (dist.metrics_json(), dist.round_metrics().len(), dropped)
        } else if let Some(asynch) = event_driven.as_ref() {
            let dropped =
                asynch.round_metrics().iter().map(|m| m.dropped_workers.len()).sum();
            (asynch.metrics_json(), asynch.round_metrics().len(), dropped)
        } else {
            return Err("--round-metrics needs --workers > 1".into());
        };
        std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
        let dropped: usize = dropped;
        writeln!(
            out,
            "round metrics written to {path} ({rounds} rounds, {dropped} dropped rounds)"
        )
        .map_err(|e| e.to_string())?;
    }
    if let Some(path) = args.get("event-trace") {
        let asynch = event_driven
            .as_ref()
            .ok_or("--event-trace needs --runtime event")?;
        let mut trace = asynch.trace_lines().join("\n");
        trace.push('\n');
        std::fs::write(path, &trace).map_err(|e| format!("cannot write {path}: {e}"))?;
        writeln!(
            out,
            "event trace written to {path} ({} events)",
            asynch.trace_lines().len()
        )
        .map_err(|e| e.to_string())?;
    }
    let wire_totals = distributed
        .as_ref()
        .map(|d| (d.wire(), d.wire_bytes_total()))
        .or_else(|| event_driven.as_ref().map(|a| (a.wire(), a.wire_bytes_total())));
    if let Some((wire, (raw, encoded))) = wire_totals {
        if encoded > 0 {
            writeln!(
                out,
                "wire {}: {} B raw -> {} B encoded ({:.2}x)",
                wire,
                raw,
                encoded,
                raw as f64 / encoded as f64
            )
            .map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

/// `scd sweep`: warm-started regularization path over a λ grid.
pub fn sweep(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    args.check_known(&[
        "data", "features", "lambda-max", "lambda-ratio", "points", "tol", "max-epochs", "seed",
    ])
    .map_err(|e| e.to_string())?;
    let data = load(args)?;
    let lambda_max = args.get_or("lambda-max", 1.0f64, "number").map_err(|e| e.to_string())?;
    let ratio = args.get_or("lambda-ratio", 1e-3f64, "number").map_err(|e| e.to_string())?;
    let points = args.get_or("points", 8usize, "integer").map_err(|e| e.to_string())?;
    let tol = args.get_or("tol", 1e-6f64, "number").map_err(|e| e.to_string())?;
    let max_epochs = args.get_or("max-epochs", 300usize, "integer").map_err(|e| e.to_string())?;
    let seed = args.get_or("seed", 1u64, "integer").map_err(|e| e.to_string())?;
    let base = RidgeProblem::from_labelled(&data, lambda_max).map_err(|e| e.to_string())?;
    let grid = RegularizationPath::log_grid(lambda_max, ratio, points.max(2));
    let path = RegularizationPath::solve(&base, &grid, tol, max_epochs, seed);
    writeln!(out, "{:>12} {:>8} {:>12} {:>12}", "lambda", "epochs", "gap", "train_mse")
        .map_err(|e| e.to_string())?;
    let csr = base.csr();
    for pt in &path.points {
        let scores = csr.matvec(&pt.beta).expect("width matches");
        let mse: f64 = scores
            .iter()
            .zip(base.labels())
            .map(|(&s, &y)| (s as f64 - y as f64).powi(2))
            .sum::<f64>()
            / base.n() as f64;
        writeln!(
            out,
            "{:>12.4e} {:>8} {:>12.3e} {:>12.6}",
            pt.lambda, pt.epochs, pt.gap, mse
        )
        .map_err(|e| e.to_string())?;
    }
    writeln!(out, "total epochs (warm-started): {}", path.total_epochs())
        .map_err(|e| e.to_string())?;
    Ok(())
}

fn load_model(path: &str) -> Result<TrainedModel, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    TrainedModel::load(file).map_err(|e| format!("cannot load {path}: {e}"))
}

/// `scd serve`: a JSON-lines scoring session — requests on stdin, one
/// response per line on stdout. Either serves a saved `--model` file
/// (with `{"op":"reload"}` hot swap from disk) or trains live from
/// `--train-data`, with a parameter server publishing into the serving
/// slot at every round boundary.
pub fn serve(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    args.check_known(&[
        "model", "train-data", "features", "objective", "lambda", "workers", "epochs", "seed",
    ])
    .map_err(|e| e.to_string())?;
    match (args.get("model"), args.get("train-data")) {
        (Some(_), Some(_)) => {
            Err("pass --model (a saved file) or --train-data (train live), not both".into())
        }
        (None, None) => Err("serve needs --model FILE or --train-data FILE|DIR".into()),
        (Some(path), None) => {
            for flag in ["objective", "lambda", "workers", "epochs", "seed", "features"] {
                if args.get(flag).is_some() {
                    return Err(format!("--{flag} only applies to --train-data serving"));
                }
            }
            let model = load_model(path)?;
            let slot = ModelSlot::new(model.features());
            slot.publish(model.objective, model.lambda, &model.beta);
            eprintln!(
                "serving {path}: {} features, {} objective \
                 (send {{\"op\":\"reload\"}} to re-read the file)",
                model.features(),
                model.objective.label()
            );
            serve_session(&slot, Some(path), out)
        }
        (None, Some(path)) => serve_live(path, args, out),
    }
}

/// The shared request loop: read stdin lines until EOF, answer each one.
/// `reload_from` enables the CLI-level `{"op":"reload"}` op.
fn serve_session(
    slot: &ModelSlot,
    reload_from: Option<&str>,
    out: &mut dyn Write,
) -> Result<(), String> {
    let scorer = BatchScorer::new(scd_sched::global());
    let (mut requests, mut scored_rows, mut errors) = (0u64, 0u64, 0u64);
    for line in std::io::stdin().lock().lines() {
        let line = line.map_err(|e| format!("cannot read stdin: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        requests += 1;
        let response = if is_reload(&line) {
            reload(reload_from, slot)
        } else {
            respond(&line, slot, &scorer)
        };
        scored_rows += response.scored_rows;
        if !response.ok {
            errors += 1;
        }
        writeln!(out, "{}", response.line).map_err(|e| e.to_string())?;
        out.flush().map_err(|e| e.to_string())?;
    }
    eprintln!("served {requests} requests ({scored_rows} rows scored, {errors} errors)");
    Ok(())
}

fn is_reload(line: &str) -> bool {
    Json::parse(line)
        .ok()
        .and_then(|req| req.get("op").and_then(Json::as_str).map(|op| op == "reload"))
        .unwrap_or(false)
}

fn error_response(msg: &str) -> Response {
    Response {
        line: format!("{{\"ok\":false,\"error\":{}}}", escape(msg)),
        ok: false,
        scored_rows: 0,
    }
}

/// `{"op":"reload"}`: re-read the `--model` file and publish it into the
/// serving slot — the on-disk flavour of a hot model swap. The new file
/// must keep the feature width (the slot never resizes under readers).
fn reload(reload_from: Option<&str>, slot: &ModelSlot) -> Response {
    let Some(path) = reload_from else {
        return error_response(
            "reload applies only to --model file serving (live training republishes itself)",
        );
    };
    let model = match load_model(path) {
        Ok(model) => model,
        Err(e) => return error_response(&e),
    };
    if model.features() != slot.features() {
        return error_response(&format!(
            "reload rejected: {path} now has {} features, the serving slot holds {}",
            model.features(),
            slot.features()
        ));
    }
    let seq = slot.publish(model.objective, model.lambda, &model.beta);
    Response {
        line: format!(
            "{{\"ok\":true,\"reloaded\":true,\"model_seq\":{seq},\"features\":{},\
             \"objective\":{},\"lambda\":{}}}",
            model.features(),
            escape(model.objective.label()),
            model.lambda,
        ),
        ok: true,
        scored_rows: 0,
    }
}

/// `scd serve --train-data`: hot model swap under load. A parameter
/// server trains in a background thread and publishes the assembled
/// model at every round boundary; the foreground session scores against
/// whatever round is current (`model_seq` in each response names it).
fn serve_live(path: &str, args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let lambda = args.get_or("lambda", 1e-3f64, "number").map_err(|e| e.to_string())?;
    let epochs = args.get_or("epochs", 50usize, "integer").map_err(|e| e.to_string())?.max(1);
    let workers = args.get_or("workers", 4usize, "integer").map_err(|e| e.to_string())?;
    let seed = args.get_or("seed", 1u64, "integer").map_err(|e| e.to_string())?;
    if workers == 0 {
        return Err("--workers must be >= 1".into());
    }
    let objective_name = args.get("objective").unwrap_or("ridge");
    let objective = ObjectiveKind::parse(objective_name).map_err(|_| {
        format!("serve trains --objective ridge|logistic|svm|lasso, not {objective_name:?}")
    })?;
    let form = objective.default_form();
    let problem = if Path::new(path).is_dir() {
        if args.get("features").is_some() {
            return Err("--features applies to LIBSVM files, not shard directories".into());
        }
        let store = open_store(path)?;
        let (csr, labels) = store.load_all().map_err(|e| format!("cannot load {path}: {e}"))?;
        RidgeProblem::new(csr, labels, lambda).map_err(|e| e.to_string())?
    } else {
        let features = args
            .get("features")
            .map(|v| {
                v.parse::<usize>()
                    .map_err(|_| format!("--features {v:?}: expected integer"))
            })
            .transpose()?;
        let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
        let data = read_libsvm(file, features).map_err(|e| format!("cannot parse {path}: {e}"))?;
        RidgeProblem::from_labelled(&data, lambda).map_err(|e| e.to_string())?
    };
    objective.validate(&problem, form).map_err(|e| e.to_string())?;
    let problem = Arc::new(problem);
    let slot = Arc::new(ModelSlot::new(problem.m()));
    let trainer = {
        let problem = Arc::clone(&problem);
        let slot = Arc::clone(&slot);
        let config = ParamServerConfig::new(workers, form)
            .with_objective(objective)
            .with_seed(seed);
        std::thread::spawn(move || {
            let mut server = ParamServerScd::new(&problem, &config);
            let observer_problem = Arc::clone(&problem);
            server.set_round_observer(Box::new(move |_round, weights| {
                // The observer hands over native-form weights; dual
                // iterates go through the objective's optimality mapping.
                let beta = match form {
                    Form::Primal => weights.to_vec(),
                    Form::Dual => objective.induced_primal(&observer_problem, weights),
                };
                slot.publish(objective, observer_problem.lambda(), &beta);
            }));
            for _ in 0..epochs {
                server.epoch(&problem);
            }
        })
    };
    // Serve from the first published round onward — scoring before any
    // round completed would only answer "no model published yet".
    while slot.seq() == 0 && !trainer.is_finished() {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    eprintln!(
        "serving live: {} objective, {workers}-worker parameter server publishing {epochs} rounds",
        objective.label()
    );
    let result = serve_session(&slot, None, out);
    trainer.join().map_err(|_| "training thread panicked".to_string())?;
    result
}

/// `scd score`: batch-score a dataset with a saved model — one JSON line
/// per row, then a JSON summary line. Shard directories stream batch by
/// batch, so scoring never loads the whole store.
pub fn score(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    args.check_known(&["model", "data", "features", "batch", "limit"])
        .map_err(|e| e.to_string())?;
    let model_path = args.require("model").map_err(|e| e.to_string())?;
    let data_path = args.require("data").map_err(|e| e.to_string())?;
    let batch = args.get_or("batch", 64usize, "integer").map_err(|e| e.to_string())?;
    if batch == 0 {
        return Err("--batch must be >= 1".into());
    }
    let limit = args.get_or("limit", usize::MAX, "integer").map_err(|e| e.to_string())?;
    let model = load_model(model_path)?;
    let scorer = BatchScorer::new(scd_sched::global());

    // Append a JSON number (or null for non-finite) without the
    // intermediate String `num_f32` would allocate per value.
    fn push_num(line: &mut String, v: f32) {
        use std::fmt::Write as _;
        if v.is_finite() {
            write!(line, "{v}").expect("writing to a String cannot fail");
        } else {
            line.push_str("null");
        }
    }

    let mut rows_done = 0usize;
    let mut batches = 0usize;
    let mut correct = 0usize;
    let mut binary = true;
    let mut squared_error = 0f64;
    // One scoring workspace and one line buffer for the whole stream:
    // per-row output formats into the reused String, so the loop's only
    // steady-state heap traffic is whatever the batch loader needs.
    let mut scored = Scored::default();
    let mut line = String::new();
    let mut score_batch = |rows: &CsrMatrix,
                           labels: &[f32],
                           first_row: usize,
                           out: &mut dyn Write|
     -> Result<(), String> {
        scorer
            .score_into(rows, model.objective, &model.beta, &mut scored)
            .map_err(|e| e.to_string())?;
        for (i, (&d, &p)) in scored.decisions.iter().zip(&scored.predictions).enumerate() {
            let y = labels[i];
            line.clear();
            use std::fmt::Write as _;
            write!(line, "{{\"row\":{},\"label\":", first_row + i)
                .expect("writing to a String cannot fail");
            push_num(&mut line, y);
            line.push_str(",\"decision\":");
            push_num(&mut line, d);
            line.push_str(",\"prediction\":");
            push_num(&mut line, p);
            line.push_str("}\n");
            out.write_all(line.as_bytes()).map_err(|e| e.to_string())?;
            binary &= y == 1.0 || y == -1.0;
            if (d >= 0.0) == (y > 0.0) {
                correct += 1;
            }
            squared_error += (d as f64 - y as f64).powi(2);
        }
        rows_done += scored.decisions.len();
        batches += 1;
        Ok(())
    };

    if Path::new(data_path).is_dir() {
        if args.get("features").is_some() {
            return Err("--features applies to LIBSVM files, not shard directories".into());
        }
        let store = open_store(data_path)?;
        if store.cols() > model.features() {
            return Err(format!(
                "feature-space mismatch: model has {} features, shards are {} wide",
                model.features(),
                store.cols()
            ));
        }
        let total = store.rows().min(limit);
        let mut start = 0usize;
        while start < total {
            let end = (start + batch).min(total);
            let (csr, labels) = store
                .load_rows(start..end)
                .map_err(|e| format!("cannot load rows {start}..{end} of {data_path}: {e}"))?;
            score_batch(&csr, &labels, start, out)?;
            start = end;
        }
    } else {
        let data = if args.get("features").is_some() {
            load(args)?
        } else {
            let f = File::open(data_path).map_err(|e| format!("cannot open {data_path}: {e}"))?;
            read_libsvm(f, Some(model.features()))
                .map_err(|e| format!("cannot parse {data_path}: {e}"))?
        };
        let csr = data.matrix.to_csr();
        let total = csr.rows().min(limit);
        let mut start = 0usize;
        while start < total {
            let end = (start + batch).min(total);
            let pairs: Vec<Vec<(u32, f32)>> = (start..end)
                .map(|r| {
                    let row = csr.row(r);
                    row.indices.iter().copied().zip(row.values.iter().copied()).collect()
                })
                .collect();
            let slice = scd_serve::batch_from_pairs(&pairs, model.features())
                .map_err(|e| e.to_string())?;
            score_batch(&slice, &data.labels[start..end], start, out)?;
            start = end;
        }
    }

    let accuracy = if binary && rows_done > 0 {
        format!("{}", correct as f64 / rows_done as f64)
    } else {
        "null".into()
    };
    let mse = if rows_done > 0 {
        format!("{}", squared_error / rows_done as f64)
    } else {
        "null".into()
    };
    writeln!(
        out,
        "{{\"ok\":true,\"rows\":{rows_done},\"batches\":{batches},\"batch\":{batch},\
         \"objective\":{},\"features\":{},\"accuracy\":{accuracy},\"mse\":{mse}}}",
        escape(model.objective.label()),
        model.features(),
    )
    .map_err(|e| e.to_string())
}

/// `scd predict`: score a LIBSVM file with a saved model.
pub fn predict(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    args.check_known(&["model", "data", "features"]).map_err(|e| e.to_string())?;
    let model_path = args.require("model").map_err(|e| e.to_string())?;
    let model = load_model(model_path)?;
    // Score against the model's feature space unless overridden.
    let data = if args.get("features").is_some() {
        load(args)?
    } else {
        let path = args.require("data").map_err(|e| e.to_string())?;
        let f = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
        read_libsvm(f, Some(model.features()))
            .map_err(|e| format!("cannot parse {path}: {e}"))?
    };
    let csr = data.matrix.to_csr();
    let binary = data.labels.iter().all(|&y| y == 1.0 || y == -1.0);
    writeln!(
        out,
        "model: {} weights, trained {} form, lambda {}",
        model.features(),
        model.form.label(),
        model.lambda
    )
    .map_err(|e| e.to_string())?;
    if binary {
        writeln!(out, "accuracy: {:.2}%", 100.0 * model.accuracy(&csr, &data.labels))
            .map_err(|e| e.to_string())?;
    }
    writeln!(out, "mse: {:.6}", model.mse(&csr, &data.labels)).map_err(|e| e.to_string())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    fn run_to_string(spec: &str) -> Result<String, String> {
        let mut buf = Vec::new();
        run(&args(spec), &mut buf)?;
        Ok(String::from_utf8(buf).unwrap())
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("scd_cli_test_{name}_{}.svm", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn generate_info_train_roundtrip() {
        let path = tmp("roundtrip");
        let out = run_to_string(&format!(
            "generate --kind webspam --rows 80 --cols 60 --nnz-per-row 6 --scale 0.3 --output {path}"
        ))
        .unwrap();
        assert!(out.contains("N=80"));

        let out = run_to_string(&format!("info --data {path}")).unwrap();
        assert!(out.contains("N=80"));
        let out = run_to_string(&format!("info --data {path} --detail yes")).unwrap();
        assert!(out.contains("ELLPACK padding ratio"), "{out}");
        assert!(out.contains("gini"));

        let out = run_to_string(&format!(
            "train --data {path} --features 60 --epochs 30 --eval-every 30"
        ))
        .unwrap();
        assert!(out.contains("SCD (1 thread)"));
        assert!(out.contains("epoch    30"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn train_distributed_and_gpu() {
        let path = tmp("dist");
        run_to_string(&format!(
            "generate --kind webspam --rows 60 --cols 50 --nnz-per-row 5 --scale 0.3 --output {path}"
        ))
        .unwrap();
        let out = run_to_string(&format!(
            "train --data {path} --features 50 --workers 3 --aggregation adaptive --epochs 10 --eval-every 5"
        ))
        .unwrap();
        assert!(out.contains("K=3"));
        assert!(out.contains("adaptive"));
        let out = run_to_string(&format!(
            "train --data {path} --features 50 --solver tpa-titanx --form dual --epochs 5 --eval-every 5"
        ))
        .unwrap();
        assert!(out.contains("TPA-SCD (GTX Titan X)"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn train_with_faults_writes_round_metrics() {
        let path = tmp("fault");
        let metrics_path = tmp("fault_metrics").replace(".svm", ".json");
        run_to_string(&format!(
            "generate --kind webspam --rows 80 --cols 60 --nnz-per-row 5 --scale 0.3 --output {path}"
        ))
        .unwrap();
        let out = run_to_string(&format!(
            "train --data {path} --features 60 --workers 4 --round-threads 2 \
             --fault-drop 0.2 --fault-retries 2 --fault-seed 9 --epochs 10 --eval-every 10 \
             --round-metrics {metrics_path}"
        ))
        .unwrap();
        assert!(out.contains("round metrics written"), "{out}");
        let json = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(json.contains("\"epoch\": 0"), "{json}");
        assert!(json.contains("\"survivors\""));

        // Fault flags are validated…
        assert!(run_to_string(&format!(
            "train --data {path} --features 60 --workers 2 --fault-drop 1.5"
        ))
        .unwrap_err()
        .contains("probability"));
        // …and metrics need a cluster.
        assert!(run_to_string(&format!(
            "train --data {path} --features 60 --round-metrics {metrics_path}"
        ))
        .unwrap_err()
        .contains("--workers"));
        std::fs::remove_file(path).ok();
        std::fs::remove_file(metrics_path).ok();
    }

    #[test]
    fn train_with_wire_formats() {
        let path = tmp("wire");
        run_to_string(&format!(
            "generate --kind webspam --rows 60 --cols 50 --nnz-per-row 5 --scale 0.3 --output {path}"
        ))
        .unwrap();
        let out = run_to_string(&format!(
            "train --data {path} --features 50 --workers 3 --wire topk-ef:8 --epochs 10 --eval-every 10"
        ))
        .unwrap();
        assert!(out.contains("wire topk-ef:8:"), "{out}");
        assert!(out.contains("B encoded"), "{out}");
        let out = run_to_string(&format!(
            "train --data {path} --features 50 --workers 2 --wire fp16 --epochs 5 --eval-every 5"
        ))
        .unwrap();
        assert!(out.contains("wire fp16:"), "{out}");
        assert!(run_to_string(&format!(
            "train --data {path} --features 50 --workers 2 --wire zstd"
        ))
        .unwrap_err()
        .contains("unknown wire format"));
        assert!(run_to_string(&format!(
            "train --data {path} --features 50 --workers 2 --wire topk:0"
        ))
        .unwrap_err()
        .contains("positive integer"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn train_event_runtime_with_staleness() {
        let path = tmp("event");
        let metrics_path = tmp("event_metrics").replace(".svm", ".json");
        let trace_path = tmp("event_trace").replace(".svm", ".log");
        run_to_string(&format!(
            "generate --kind webspam --rows 60 --cols 50 --nnz-per-row 5 --scale 0.3 --output {path}"
        ))
        .unwrap();
        // --staleness alone implies --runtime event.
        let out = run_to_string(&format!(
            "train --data {path} --features 50 --workers 3 --staleness 2 --epochs 10 \
             --eval-every 10 --round-metrics {metrics_path} --event-trace {trace_path}"
        ))
        .unwrap();
        assert!(out.contains("tau=2"), "{out}");
        assert!(out.contains("round metrics written"), "{out}");
        assert!(out.contains("event trace written"), "{out}");
        let json = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(json.contains("\"staleness_hist\""), "{json}");
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        assert!(trace.lines().next().unwrap().starts_with("t="), "{trace}");

        let out = run_to_string(&format!(
            "train --data {path} --features 50 --workers 2 --runtime event --staleness inf \
             --epochs 5 --eval-every 5"
        ))
        .unwrap();
        assert!(out.contains("tau=inf"), "{out}");
        assert!(run_to_string(&format!(
            "train --data {path} --features 50 --workers 2 --runtime warp"
        ))
        .unwrap_err()
        .contains("expected sync|event"));
        assert!(run_to_string(&format!(
            "train --data {path} --features 50 --workers 2 --event-trace {trace_path}"
        ))
        .unwrap_err()
        .contains("needs --runtime event"));
        std::fs::remove_file(path).ok();
        std::fs::remove_file(metrics_path).ok();
        std::fs::remove_file(trace_path).ok();
    }

    #[test]
    fn train_other_objectives() {
        let path = tmp("obj");
        run_to_string(&format!(
            "generate --kind criteo --rows 60 --fields 4 --cardinality 10 --output {path}"
        ))
        .unwrap();
        for obj in ["svm", "logistic", "lasso", "elastic-net"] {
            let out = run_to_string(&format!(
                "train --data {path} --features 40 --objective {obj} --lambda 0.01 --epochs 5 --eval-every 5"
            ))
            .unwrap();
            assert!(out.contains("epoch     5"), "{obj}: {out}");
            if obj != "elastic-net" {
                assert!(out.contains(&format!("{obj} objective")), "{obj}: {out}");
                assert!(
                    out.contains("convergence rate:") || out.contains("gap reached 0"),
                    "{obj}: rate report missing: {out}"
                );
            }
        }
        // The classification duals report training accuracy.
        let out = run_to_string(&format!(
            "train --data {path} --features 40 --objective svm --epochs 5 --eval-every 5"
        ))
        .unwrap();
        assert!(out.contains("acc "), "{out}");
        // Any objective runs distributed: the driver validates the pairing.
        let out = run_to_string(&format!(
            "train --data {path} --features 40 --objective logistic --workers 3 --epochs 5 --eval-every 5"
        ))
        .unwrap();
        assert!(out.contains("K=3"), "{out}");
        assert!(out.contains("logistic objective"), "{out}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn train_syscd_backend() {
        let path = tmp("syscd");
        run_to_string(&format!(
            "generate --kind webspam --rows 80 --cols 60 --nnz-per-row 6 --scale 0.3 --output {path}"
        ))
        .unwrap();
        let out = run_to_string(&format!(
            "train --data {path} --features 60 --backend syscd --threads 4 --buckets 8 \
             --merge-every 2 --epochs 20 --eval-every 20"
        ))
        .unwrap();
        assert!(out.contains("SySCD (4 threads)"), "{out}");
        assert!(out.contains("epoch    20"), "{out}");
        // The legacy alias spells the same backend.
        let out = run_to_string(&format!(
            "train --data {path} --features 60 --solver syscd --threads 2 --epochs 5 --eval-every 5"
        ))
        .unwrap();
        assert!(out.contains("SySCD (2 threads)"), "{out}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn backend_flag_errors() {
        let path = tmp("backend_err");
        run_to_string(&format!(
            "generate --kind webspam --rows 20 --cols 15 --nnz-per-row 3 --output {path}"
        ))
        .unwrap();
        // Unknown values list the full registry.
        let err = run_to_string(&format!("train --data {path} --backend warp9")).unwrap_err();
        assert!(err.contains("unknown --backend"), "{err}");
        assert!(
            err.contains("seq|a-scd|wild|asyscd|syscd|tpa-m4000|tpa-titanx"),
            "{err}"
        );
        // Contradictory alias use is rejected.
        let err = run_to_string(&format!(
            "train --data {path} --backend syscd --solver seq"
        ))
        .unwrap_err();
        assert!(err.contains("aliases"), "{err}");
        // syscd-only knobs are rejected on other backends.
        let err = run_to_string(&format!("train --data {path} --buckets 8")).unwrap_err();
        assert!(err.contains("--buckets only applies to --backend syscd"), "{err}");
        let err = run_to_string(&format!(
            "train --data {path} --solver wild --merge-every 2"
        ))
        .unwrap_err();
        assert!(err.contains("--merge-every only applies to --solver syscd"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn train_help_documents_syscd_knobs() {
        let out = run_to_string("train --help").unwrap();
        for word in ["--backend", "syscd", "--buckets", "--merge-every"] {
            assert!(out.contains(word), "train --help missing {word}");
        }
    }

    #[test]
    fn host_threads_zero_leaves_the_scheduler_alone() {
        // 0 = auto: train must not try to (re)configure the process-wide
        // scheduler, so this is safe to run in-process alongside other
        // tests that may have already initialized it.
        let path = tmp("host_auto");
        run_to_string(&format!(
            "generate --kind webspam --rows 40 --cols 30 --nnz-per-row 4 --scale 0.3 --output {path}"
        ))
        .unwrap();
        let out = run_to_string(&format!(
            "train --data {path} --features 30 --host-threads 0 --epochs 5 --eval-every 5"
        ))
        .unwrap();
        assert!(out.contains("epoch     5"), "{out}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn target_gap_stops_early() {
        let path = tmp("target");
        run_to_string(&format!(
            "generate --kind webspam --rows 60 --cols 40 --nnz-per-row 5 --scale 0.3 --output {path}"
        ))
        .unwrap();
        let out = run_to_string(&format!(
            "train --data {path} --features 40 --epochs 500 --eval-every 100 --target-gap 1e-3"
        ))
        .unwrap();
        assert!(out.contains("target gap 1.0e-3 reached"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn helpful_errors() {
        assert!(run_to_string("explode").unwrap_err().contains("unknown subcommand"));
        assert!(run_to_string("generate --kind nope --output /tmp/x")
            .unwrap_err()
            .contains("unknown --kind"));
        assert!(run_to_string("info --data /nonexistent/file.svm")
            .unwrap_err()
            .contains("cannot open"));
        let path = tmp("err");
        run_to_string(&format!(
            "generate --kind webspam --rows 10 --cols 10 --nnz-per-row 2 --output {path}"
        ))
        .unwrap();
        assert!(run_to_string(&format!("train --data {path} --solver warp9"))
            .unwrap_err()
            .contains("unknown --solver"));
        assert!(run_to_string(&format!(
            "train --data {path} --solver asyscd --form dual"
        ))
        .unwrap_err()
        .contains("only --form primal"));
        assert!(run_to_string(&format!("train --data {path} --turbo 1"))
            .unwrap_err()
            .contains("unknown option"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn save_and_predict_roundtrip() {
        let data_path = tmp("model_data");
        let model_path = tmp("model_file");
        run_to_string(&format!(
            "generate --kind webspam --rows 100 --cols 80 --nnz-per-row 8 --scale 0.3 --output {data_path}"
        ))
        .unwrap();
        let out = run_to_string(&format!(
            "train --data {data_path} --features 80 --lambda 0.01 --epochs 40              --eval-every 40 --save-model {model_path}"
        ))
        .unwrap();
        assert!(out.contains("model saved"), "{out}");
        let out = run_to_string(&format!(
            "predict --model {model_path} --data {data_path}"
        ))
        .unwrap();
        assert!(out.contains("accuracy:"), "{out}");
        assert!(out.contains("mse:"));
        // The model fits its own training data well.
        let acc: f64 = out
            .lines()
            .find(|l| l.starts_with("accuracy:"))
            .and_then(|l| l.trim_start_matches("accuracy:").trim().trim_end_matches('%').parse().ok())
            .unwrap();
        assert!(acc > 90.0, "training accuracy {acc}");
        std::fs::remove_file(data_path).ok();
        std::fs::remove_file(model_path).ok();
    }

    #[test]
    fn save_model_works_for_every_objective() {
        let data_path = tmp("save_all_data");
        run_to_string(&format!(
            "generate --kind criteo --rows 80 --fields 4 --cardinality 12 --output {data_path}"
        ))
        .unwrap();
        for obj in ["ridge", "logistic", "svm", "lasso"] {
            let model_path = tmp(&format!("save_all_{obj}"));
            let out = run_to_string(&format!(
                "train --data {data_path} --features 48 --objective {obj} --lambda 0.01 \
                 --epochs 10 --eval-every 10 --save-model {model_path}"
            ))
            .unwrap();
            assert!(out.contains(&format!("model saved to {model_path}")), "{obj}: {out}");
            assert!(out.contains(&format!("{obj} objective")), "{obj}: {out}");
            // The file round-trips through predict (checksum verifies).
            let out = run_to_string(&format!(
                "predict --model {model_path} --data {data_path}"
            ))
            .unwrap();
            assert!(out.contains("mse:"), "{obj}: {out}");
            std::fs::remove_file(model_path).ok();
        }
        // Elastic-net is the one engine without a saved-model mapping;
        // the error names the objectives that have one.
        let err = run_to_string(&format!(
            "train --data {data_path} --features 48 --objective elastic-net \
             --save-model /tmp/never_written.model"
        ))
        .unwrap_err();
        assert!(err.contains("ridge|logistic|svm|lasso"), "{err}");
        assert!(err.contains("elastic-net"), "{err}");
        std::fs::remove_file(data_path).ok();
    }

    #[test]
    fn serve_and_score_flag_errors() {
        // serve: mode selection must be unambiguous…
        let err = run_to_string("serve").unwrap_err();
        assert!(err.contains("--model FILE or --train-data"), "{err}");
        let err = run_to_string("serve --model a --train-data b").unwrap_err();
        assert!(err.contains("not both"), "{err}");
        // …live-mode knobs are rejected when serving a file…
        let err = run_to_string("serve --model a --epochs 3").unwrap_err();
        assert!(err.contains("--epochs only applies to --train-data"), "{err}");
        // …and the live trainer rejects elastic-net up front.
        let err = run_to_string("serve --train-data /nonexistent --objective elastic-net")
            .unwrap_err();
        assert!(err.contains("ridge|logistic|svm|lasso"), "{err}");

        // score: model and data are required, knobs validated.
        let err = run_to_string("score --data /nonexistent").unwrap_err();
        assert!(err.contains("--model"), "{err}");
        let err = run_to_string("score --model /nonexistent --data x --batch 0").unwrap_err();
        assert!(err.contains("--batch must be >= 1"), "{err}");
        let err = run_to_string("score --model /nonexistent/m --data x").unwrap_err();
        assert!(err.contains("cannot open"), "{err}");
    }

    #[test]
    fn score_streams_rows_and_summarizes() {
        let data_path = tmp("score_data");
        let model_path = tmp("score_model");
        run_to_string(&format!(
            "generate --kind webspam --rows 50 --cols 40 --nnz-per-row 5 --scale 0.3 \
             --output {data_path}"
        ))
        .unwrap();
        run_to_string(&format!(
            "train --data {data_path} --features 40 --objective svm --epochs 20 \
             --eval-every 20 --save-model {model_path}"
        ))
        .unwrap();
        let out = run_to_string(&format!(
            "score --model {model_path} --data {data_path} --batch 7 --limit 10"
        ))
        .unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 11, "10 rows + summary: {out}");
        assert!(lines[0].starts_with("{\"row\":0,"), "{}", lines[0]);
        assert!(lines[9].starts_with("{\"row\":9,"), "{}", lines[9]);
        // SVM predictions are hard ±1 labels.
        assert!(lines[0].contains("\"prediction\":1") || lines[0].contains("\"prediction\":-1"));
        let summary = lines[10];
        assert!(summary.contains("\"ok\":true"), "{summary}");
        assert!(summary.contains("\"rows\":10"), "{summary}");
        assert!(summary.contains("\"batches\":2"), "{summary}");
        assert!(summary.contains("\"objective\":\"svm\""), "{summary}");
        assert!(!summary.contains("\"accuracy\":null"), "binary labels score accuracy: {summary}");
        std::fs::remove_file(data_path).ok();
        std::fs::remove_file(model_path).ok();
    }

    #[test]
    fn sweep_prints_a_path() {
        let path = tmp("sweep");
        run_to_string(&format!(
            "generate --kind webspam --rows 80 --cols 60 --nnz-per-row 6 --scale 0.3 --output {path}"
        ))
        .unwrap();
        let out = run_to_string(&format!(
            "sweep --data {path} --features 60 --points 4 --lambda-max 0.5 --max-epochs 100"
        ))
        .unwrap();
        assert!(out.contains("lambda"), "{out}");
        assert_eq!(out.lines().count(), 6, "header + 4 points + total: {out}");
        assert!(out.contains("total epochs"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn help_lists_subcommands() {
        let out = run_to_string("help").unwrap();
        for word in ["generate", "train", "info", "aggregation", "tpa-m4000"] {
            assert!(out.contains(word), "help missing {word}");
        }
        // The shard surface is documented too.
        for word in ["shard gen", "shard inspect", "--chunk-rows", "--partition"] {
            assert!(out.contains(word), "help missing {word}");
        }
    }

    fn tmp_dir(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("scd_cli_test_{name}_{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn shard_gen_inspect_train_roundtrip() {
        let dir = tmp_dir("shard_rt");
        let file = tmp("shard_rt");
        std::fs::remove_dir_all(&dir).ok();
        let out = run_to_string(&format!(
            "shard gen --out {dir} --kind criteo --rows 120 --fields 4 --cardinality 12 \
             --seed 9 --chunk-rows 32"
        ))
        .unwrap();
        assert!(out.contains("sharded criteo: rows=120 cols=48"), "{out}");
        assert!(out.contains("chunks=4"), "{out}");
        assert!(out.contains("on-disk bytes:"), "{out}");
        assert!(out.contains("writer high-water bytes:"), "{out}");

        let out = run_to_string(&format!("shard inspect --data {dir} --verify yes")).unwrap();
        assert!(out.contains("rows=120"), "{out}");
        assert!(out.contains("all 4 chunk checksums verified"), "{out}");

        // The same rows through `generate` (LIBSVM text) and through the
        // shards must train to the bit-identical gap — K=1 and K=4.
        run_to_string(&format!(
            "generate --kind criteo --rows 120 --fields 4 --cardinality 12 --seed 9 \
             --output {file}"
        ))
        .unwrap();
        let final_gap = |out: &str| {
            out.lines()
                .find(|l| l.starts_with("final gap"))
                .expect("final gap line")
                .to_string()
        };
        for workers in [1, 4] {
            let partition = if workers > 1 { " --partition contiguous" } else { "" };
            let mem = run_to_string(&format!(
                "train --data {file} --features 48 --form dual --workers {workers}{partition} \
                 --epochs 4 --eval-every 4"
            ))
            .unwrap();
            let store = run_to_string(&format!(
                "train --data {dir} --form dual --workers {workers} --epochs 4 --eval-every 4"
            ))
            .unwrap();
            assert_eq!(final_gap(&mem), final_gap(&store), "K={workers}");
            if workers > 1 {
                assert!(store.contains("data distribution:"), "{store}");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_file(&file).ok();
    }

    #[test]
    fn shard_and_store_misuse_is_rejected() {
        let dir = tmp_dir("shard_err");
        std::fs::remove_dir_all(&dir).ok();
        run_to_string(&format!(
            "shard gen --out {dir} --kind criteo --rows 60 --fields 3 --cardinality 8 \
             --chunk-rows 25"
        ))
        .unwrap();

        // Action grammar.
        assert!(run_to_string("shard").unwrap_err().contains("gen"));
        assert!(run_to_string("shard warp").unwrap_err().contains("unknown shard action"));
        assert!(run_to_string("train oops").unwrap_err().contains("unexpected positional"));
        assert!(run_to_string(&format!("shard gen --out {dir} --kind dense"))
            .unwrap_err()
            .contains("unknown --kind"));
        assert!(run_to_string(&format!("shard gen --out {dir} --rows 0"))
            .unwrap_err()
            .contains(">= 1"));

        // Generator/LIBSVM flags don't combine with a shard directory.
        assert!(run_to_string(&format!("train --data {dir} --fields 3"))
            .unwrap_err()
            .contains("unknown option --fields"));
        assert!(run_to_string(&format!("train --data {dir} --features 24"))
            .unwrap_err()
            .contains("not shard directories"));

        // Invalid paths.
        assert!(run_to_string("train --data /nonexistent/shards")
            .unwrap_err()
            .contains("cannot open"));
        assert!(run_to_string("shard inspect --data /nonexistent/shards")
            .unwrap_err()
            .contains("cannot open shard directory"));

        // Store-backed clusters: dual + contiguous + sync only.
        assert!(run_to_string(&format!(
            "train --data {dir} --form dual --workers 2 --partition roundrobin"
        ))
        .unwrap_err()
        .contains("contiguous"));
        assert!(run_to_string(&format!("train --data {dir} --form primal --workers 2"))
            .unwrap_err()
            .contains("dual form"));
        assert!(run_to_string(&format!(
            "train --data {dir} --form dual --workers 2 --staleness 1"
        ))
        .unwrap_err()
        .contains("--runtime sync"));
        assert!(run_to_string(&format!("train --data {dir} --partition contiguous"))
            .unwrap_err()
            .contains("--workers"));
        std::fs::remove_dir_all(&dir).ok();
    }
}

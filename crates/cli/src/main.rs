//! Binary entry point for `scd` (see [`scd_cli`] for the library surface).

use std::process::ExitCode;

fn main() -> ExitCode {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let args = match scd_cli::Args::parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match scd_cli::commands::run(&args, &mut out) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

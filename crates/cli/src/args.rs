//! Hand-rolled command-line parsing (no external dependency): a small
//! `--key value` / `--flag` grammar shared by all subcommands.

use std::collections::BTreeMap;

/// Parsed arguments: positional subcommand, an optional positional action
/// (`scd shard gen ...`), plus `--key value` options.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Args {
    /// The first positional token (subcommand).
    pub command: String,
    /// The optional second positional token. Only the `shard` subcommand
    /// accepts one; every other command rejects it at dispatch.
    pub action: Option<String>,
    options: BTreeMap<String, String>,
}

/// Parsing errors with actionable messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// An option appeared without a leading `--`.
    UnexpectedPositional(String),
    /// `--key` at end of line or followed by another `--option`.
    MissingValue(String),
    /// The same option was given twice.
    Duplicate(String),
    /// A required option is absent.
    MissingRequired(&'static str),
    /// A value failed to parse.
    BadValue {
        /// Offending option name.
        key: String,
        /// The raw value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
    /// An option not understood by the subcommand.
    Unknown(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "missing subcommand (try `scd help`)"),
            ArgError::UnexpectedPositional(t) => {
                write!(f, "unexpected positional argument {t:?} (options are --key value)")
            }
            ArgError::MissingValue(k) => write!(f, "option --{k} needs a value"),
            ArgError::Duplicate(k) => write!(f, "option --{k} given more than once"),
            ArgError::MissingRequired(k) => write!(f, "required option --{k} is missing"),
            ArgError::BadValue { key, value, expected } => {
                write!(f, "--{key} {value:?}: expected {expected}")
            }
            ArgError::Unknown(k) => write!(f, "unknown option --{k}"),
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse a raw token stream (usually `std::env::args().skip(1)`).
    pub fn parse(tokens: impl IntoIterator<Item = String>) -> Result<Args, ArgError> {
        let mut tokens = tokens.into_iter().peekable();
        let command = tokens.next().ok_or(ArgError::MissingCommand)?;
        if command.starts_with("--") {
            return Err(ArgError::MissingCommand);
        }
        let mut options = BTreeMap::new();
        let mut action = None;
        while let Some(tok) = tokens.next() {
            let Some(stripped) = tok.strip_prefix("--") else {
                // At most one extra positional (the action); whether the
                // subcommand accepts it is decided at dispatch.
                if action.is_none() && options.is_empty() {
                    action = Some(tok);
                    continue;
                }
                return Err(ArgError::UnexpectedPositional(tok.clone()));
            };
            let key = stripped.to_string();
            // `--help` is the one valueless flag: any subcommand accepts
            // it and prints usage instead of running.
            if key == "help" {
                if options.insert(key.clone(), String::new()).is_some() {
                    return Err(ArgError::Duplicate(key));
                }
                continue;
            }
            let value = match tokens.peek() {
                Some(v) if !v.starts_with("--") => tokens.next().expect("peeked"),
                _ => return Err(ArgError::MissingValue(key)),
            };
            if options.insert(key.clone(), value).is_some() {
                return Err(ArgError::Duplicate(key));
            }
        }
        Ok(Args {
            command,
            action,
            options,
        })
    }

    /// Reject the positional action for subcommands that take none.
    pub fn reject_action(&self) -> Result<(), ArgError> {
        match &self.action {
            Some(a) => Err(ArgError::UnexpectedPositional(a.clone())),
            None => Ok(()),
        }
    }

    /// A string option, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(|s| s.as_str())
    }

    /// A required string option.
    pub fn require(&self, key: &'static str) -> Result<&str, ArgError> {
        self.get(key).ok_or(ArgError::MissingRequired(key))
    }

    /// A typed option with a default.
    pub fn get_or<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::BadValue {
                key: key.to_string(),
                value: raw.to_string(),
                expected,
            }),
        }
    }

    /// Reject any option not in the allow-list (typo protection).
    pub fn check_known(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for key in self.options.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(ArgError::Unknown(key.clone()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, ArgError> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_and_options() {
        let a = parse("train --lambda 0.001 --epochs 50").unwrap();
        assert_eq!(a.command, "train");
        assert_eq!(a.get("lambda"), Some("0.001"));
        assert_eq!(a.get("epochs"), Some("50"));
        assert_eq!(a.get("missing"), None);
    }

    #[test]
    fn rejects_missing_command() {
        assert_eq!(parse("").unwrap_err(), ArgError::MissingCommand);
        assert_eq!(parse("--lambda 1").unwrap_err(), ArgError::MissingCommand);
    }

    #[test]
    fn rejects_positional_noise() {
        // One extra positional parses as the action — commands that take
        // none reject it at dispatch.
        let a = parse("train oops").unwrap();
        assert_eq!(a.action.as_deref(), Some("oops"));
        assert!(matches!(
            a.reject_action().unwrap_err(),
            ArgError::UnexpectedPositional(_)
        ));
        // A second positional, or one after options, fails at parse.
        assert!(matches!(
            parse("shard gen extra").unwrap_err(),
            ArgError::UnexpectedPositional(_)
        ));
        assert!(matches!(
            parse("train --lambda 1 oops").unwrap_err(),
            ArgError::UnexpectedPositional(_)
        ));
    }

    #[test]
    fn action_positional_parses() {
        let a = parse("shard gen --rows 100").unwrap();
        assert_eq!(a.command, "shard");
        assert_eq!(a.action.as_deref(), Some("gen"));
        assert_eq!(a.get("rows"), Some("100"));
        assert!(parse("info --data x").unwrap().reject_action().is_ok());
    }

    #[test]
    fn rejects_missing_values_and_duplicates() {
        assert_eq!(
            parse("train --lambda").unwrap_err(),
            ArgError::MissingValue("lambda".into())
        );
        assert_eq!(
            parse("train --lambda --epochs 3").unwrap_err(),
            ArgError::MissingValue("lambda".into())
        );
        assert_eq!(
            parse("train --x 1 --x 2").unwrap_err(),
            ArgError::Duplicate("x".into())
        );
    }

    #[test]
    fn typed_accessors() {
        let a = parse("train --epochs 50").unwrap();
        assert_eq!(a.get_or("epochs", 10usize, "integer").unwrap(), 50);
        assert_eq!(a.get_or("workers", 4usize, "integer").unwrap(), 4);
        assert!(matches!(
            parse("train --epochs abc")
                .unwrap()
                .get_or("epochs", 1usize, "integer"),
            Err(ArgError::BadValue { .. })
        ));
        assert!(matches!(a.require("data"), Err(ArgError::MissingRequired("data"))));
    }

    #[test]
    fn help_is_a_valueless_flag() {
        let a = parse("train --help").unwrap();
        assert!(a.get("help").is_some());
        // …even sandwiched between valued options.
        let a = parse("train --epochs 3 --help --lambda 0.1").unwrap();
        assert!(a.get("help").is_some());
        assert_eq!(a.get("epochs"), Some("3"));
        assert_eq!(
            parse("train --help --help").unwrap_err(),
            ArgError::Duplicate("help".into())
        );
    }

    #[test]
    fn unknown_options_flagged() {
        let a = parse("train --lambda 1 --oops 2").unwrap();
        assert_eq!(
            a.check_known(&["lambda"]).unwrap_err(),
            ArgError::Unknown("oops".into())
        );
        assert!(a.check_known(&["lambda", "oops"]).is_ok());
    }

    #[test]
    fn errors_display_helpfully() {
        assert!(ArgError::MissingRequired("data").to_string().contains("--data"));
        assert!(ArgError::Unknown("zz".into()).to_string().contains("--zz"));
        assert!(ArgError::BadValue {
            key: "epochs".into(),
            value: "x".into(),
            expected: "integer"
        }
        .to_string()
        .contains("expected integer"));
    }
}

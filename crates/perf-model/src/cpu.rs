//! CPU cost model.
//!
//! One SCD coordinate update streams through a sparse column (or row) twice —
//! once for the partial inner product, once for the shared-vector write-back
//! — plus a constant per-coordinate overhead (permutation lookup, scalar
//! update). The model therefore charges seconds per nonzero touched and
//! seconds per coordinate, with a throughput multiplier for the asynchronous
//! multi-threaded engines.
//!
//! Calibration: the paper's webspam sample (≈9×10⁸ nonzeros, from the 7.3 GB
//! CSC footprint at 8 bytes/nnz) takes a handful of seconds per sequential
//! epoch on the 2.4 GHz Xeon (Fig. 1b reaches 200 epochs near 10³ s), which
//! pins the per-nonzero cost near 5.5 ns. The multi-thread speed-ups are the
//! paper's own measurements: ≈2× for the atomic A-SCD (no hardware float
//! atomics on that Xeon) and ≈4× for PASSCoDe-Wild, both at 16 threads.

use crate::Seconds;

/// How the asynchronous CPU engine applies shared-vector updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AsyncCpuMode {
    /// A-SCD: every update applied with an atomic addition.
    Atomic,
    /// PASSCoDe-Wild: plain racy writes; updates may be lost or overwritten.
    Wild,
}

/// An analytic CPU performance profile.
#[derive(Debug, Clone)]
pub struct CpuProfile {
    /// Human-readable name for reports.
    pub name: &'static str,
    /// Core clock in Hz (documentation; the per-op costs below already bake
    /// it in).
    pub clock_hz: f64,
    /// Physical cores.
    pub cores: usize,
    /// Hardware threads (2× cores with SMT on the paper's Xeons).
    pub threads: usize,
    /// Seconds to stream one nonzero once (load value + index, FMA, and the
    /// companion dense access).
    pub seconds_per_nnz: f64,
    /// Fixed per-coordinate-update overhead in seconds.
    pub seconds_per_coord: f64,
    /// Contention coefficient for the atomic engine: speedup(T) = T / (1 + c·(T−1)).
    pub atomic_contention: f64,
    /// Contention coefficient for the wild engine.
    pub wild_contention: f64,
    /// Contention coefficient for the SySCD-style replicated engine: no
    /// shared-vector atomics at all, only cache/bandwidth sharing, so the
    /// curve is near-linear.
    pub syscd_contention: f64,
    /// Effective single-thread streaming rate for dense vector bookkeeping
    /// (Δ-vector formation, master aggregation), bytes/s.
    pub host_stream_bytes_per_s: f64,
}

impl CpuProfile {
    /// The paper's host CPU: 8-core Intel Xeon E5-2640 v3 class, 2.40 GHz,
    /// 16 hardware threads.
    pub fn xeon_e5_2640() -> Self {
        CpuProfile {
            name: "Xeon E5 2.4GHz",
            clock_hz: 2.4e9,
            cores: 8,
            threads: 16,
            // One epoch touches each nnz twice (dot + write-back): with
            // 5.5 ns/nnz one webspam epoch (9e8 nnz) costs ≈ 5 s of
            // sequential time, matching Fig. 1b's time axis.
            seconds_per_nnz: 2.75e-9,
            seconds_per_coord: 2.0e-8,
            // Calibrated so speedup(16) ≈ 2 (paper: "only a modest speed-up
            // (around 2×) ... lack of hardware support for floating point
            // atomic addition on this particular CPU").
            atomic_contention: 7.0 / 15.0,
            // Calibrated so speedup(16) ≈ 4 (paper: "a much more significant
            // speed-up (4×)").
            wild_contention: 0.2,
            // SySCD reports near-linear scaling once the shared vector is
            // replicated per thread (≈12× at 16 threads on comparable
            // Xeons): speedup(16) ≈ 12.3 at c = 0.02.
            syscd_contention: 0.02,
            host_stream_bytes_per_s: 8.0e9,
        }
    }

    /// Seconds of single-thread compute to run one full epoch that touches
    /// `nnz` nonzeros (each streamed twice) across `coords` coordinate
    /// updates.
    pub fn sequential_epoch_seconds(&self, nnz: usize, coords: usize) -> Seconds {
        2.0 * nnz as f64 * self.seconds_per_nnz + coords as f64 * self.seconds_per_coord
    }

    /// Throughput multiplier of the asynchronous engine at `threads` threads,
    /// relative to one sequential thread.
    ///
    /// Amdahl-style contention curve `T / (1 + c·(T−1))`, with `c` calibrated
    /// per mode against the paper's measured 16-thread speed-ups.
    pub fn async_speedup(&self, mode: AsyncCpuMode, threads: usize) -> f64 {
        assert!(threads >= 1, "async_speedup: need at least one thread");
        let t = threads as f64;
        let c = match mode {
            AsyncCpuMode::Atomic => self.atomic_contention,
            AsyncCpuMode::Wild => self.wild_contention,
        };
        t / (1.0 + c * (t - 1.0))
    }

    /// Seconds for one epoch of the asynchronous engine.
    pub fn async_epoch_seconds(
        &self,
        mode: AsyncCpuMode,
        threads: usize,
        nnz: usize,
        coords: usize,
    ) -> Seconds {
        self.sequential_epoch_seconds(nnz, coords) / self.async_speedup(mode, threads)
    }

    /// Throughput multiplier of the SySCD-style replicated engine at
    /// `threads` threads — same Amdahl-style curve as [`Self::async_speedup`]
    /// but with the near-linear `syscd_contention` coefficient, because
    /// per-thread replicas remove the atomic write-back entirely.
    pub fn syscd_speedup(&self, threads: usize) -> f64 {
        assert!(threads >= 1, "syscd_speedup: need at least one thread");
        let t = threads as f64;
        t / (1.0 + self.syscd_contention * (t - 1.0))
    }

    /// Seconds for one epoch of the SySCD-style engine: the coordinate
    /// sweep at near-linear thread scaling, plus the merge traffic —
    /// every merge streams each of the `threads` replicas (read) and the
    /// merged vector (write) through the host's memory system.
    pub fn syscd_epoch_seconds(
        &self,
        threads: usize,
        nnz: usize,
        coords: usize,
        merges: usize,
        shared_len: usize,
    ) -> Seconds {
        let sweep = self.sequential_epoch_seconds(nnz, coords) / self.syscd_speedup(threads);
        let merge_bytes = merges as f64 * (threads + 1) as f64 * shared_len as f64 * 4.0;
        sweep + merge_bytes / self.host_stream_bytes_per_s
    }

    /// Host-side per-epoch bookkeeping for the distributed driver: forming
    /// Δ-vectors and scalar reductions over a length-`len` dense vector.
    /// Charged at one streamed float each way.
    pub fn host_vector_op_seconds(&self, len: usize) -> Seconds {
        len as f64 * 4.0 / self.host_stream_bytes_per_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xeon() -> CpuProfile {
        CpuProfile::xeon_e5_2640()
    }

    #[test]
    fn webspam_epoch_near_five_seconds() {
        // The calibration anchor from Fig. 1b.
        let t = xeon().sequential_epoch_seconds(900_000_000, 680_715);
        assert!(
            (3.0..8.0).contains(&t),
            "webspam sequential epoch should be a few seconds, got {t}"
        );
    }

    #[test]
    fn atomic_speedup_matches_paper_at_16_threads() {
        let s = xeon().async_speedup(AsyncCpuMode::Atomic, 16);
        assert!((s - 2.0).abs() < 0.1, "A-SCD 16-thread speedup ≈ 2×, got {s}");
    }

    #[test]
    fn wild_speedup_matches_paper_at_16_threads() {
        let s = xeon().async_speedup(AsyncCpuMode::Wild, 16);
        assert!((s - 4.0).abs() < 0.1, "wild 16-thread speedup ≈ 4×, got {s}");
    }

    #[test]
    fn speedup_is_monotone_in_threads() {
        let p = xeon();
        for mode in [AsyncCpuMode::Atomic, AsyncCpuMode::Wild] {
            let mut prev = 0.0;
            for t in 1..=32 {
                let s = p.async_speedup(mode, t);
                assert!(s >= prev, "speedup must not decrease with threads");
                prev = s;
            }
        }
    }

    #[test]
    fn one_thread_is_no_speedup() {
        let p = xeon();
        assert!((p.async_speedup(AsyncCpuMode::Atomic, 1) - 1.0).abs() < 1e-12);
        assert!((p.async_speedup(AsyncCpuMode::Wild, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn async_epoch_divides_sequential() {
        let p = xeon();
        let seq = p.sequential_epoch_seconds(1_000_000, 1_000);
        let wild = p.async_epoch_seconds(AsyncCpuMode::Wild, 16, 1_000_000, 1_000);
        assert!((seq / wild - p.async_speedup(AsyncCpuMode::Wild, 16)).abs() < 1e-9);
    }

    #[test]
    fn syscd_scales_near_linearly_and_beats_ascd() {
        let p = xeon();
        let s16 = p.syscd_speedup(16);
        assert!(
            (11.0..14.0).contains(&s16),
            "syscd 16-thread speedup should be near-linear, got {s16}"
        );
        for t in 2..=16 {
            assert!(
                p.syscd_speedup(t) > p.async_speedup(AsyncCpuMode::Atomic, t),
                "replicated engine must beat atomics at {t} threads"
            );
        }
        assert!((p.syscd_speedup(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn syscd_epoch_charges_merge_traffic() {
        let p = xeon();
        let cheap = p.syscd_epoch_seconds(8, 1_000_000, 1_000, 1, 100_000);
        let merged = p.syscd_epoch_seconds(8, 1_000_000, 1_000, 10, 100_000);
        assert!(merged > cheap, "more merges must cost more time");
        let sweep_only = p.sequential_epoch_seconds(1_000_000, 1_000) / p.syscd_speedup(8);
        assert!(cheap > sweep_only, "merge traffic must be charged");
    }

    #[test]
    fn host_vector_op_scales_linearly() {
        let p = xeon();
        let a = p.host_vector_op_seconds(1_000_000);
        let b = p.host_vector_op_seconds(2_000_000);
        assert!((b / a - 2.0).abs() < 1e-9);
    }
}

//! Network and interconnect cost model.
//!
//! The distributed experiments exchange the shared vector between workers
//! and master once per epoch: a Reduce of each worker's Δ-vector to the
//! master followed by a Broadcast of the aggregated vector (Algorithms 3
//! and 4), implemented in the paper with Open MPI over 10 Gbit Ethernet, or
//! over PCIe 3.0 when the four Titan X GPUs share one host. Adaptive
//! aggregation adds a few scalars per worker per epoch — the paper stresses
//! this extra traffic is negligible, which the model preserves.

use crate::Seconds;

/// A point-to-point link profile.
///
/// ```
/// use scd_perf_model::LinkProfile;
/// let eth = LinkProfile::ethernet_10g();
/// // Moving webspam's 1 MB shared vector: latency + bytes/bandwidth.
/// let t = eth.transfer_seconds(1_051_752);
/// assert!(t > 9e-4 && t < 2e-3);
/// ```
#[derive(Debug, Clone)]
pub struct LinkProfile {
    /// Human-readable name for reports.
    pub name: &'static str,
    /// One-way message latency in seconds.
    pub latency_seconds: f64,
    /// Sustained bandwidth in bytes/s.
    pub bandwidth_bytes_per_s: f64,
}

impl LinkProfile {
    /// 10 Gbit Ethernet: ≈1.1 GB/s effective, ≈50 µs latency.
    pub fn ethernet_10g() -> Self {
        LinkProfile {
            name: "10GbE",
            latency_seconds: 50.0e-6,
            bandwidth_bytes_per_s: 1.1e9,
        }
    }

    /// 100 Gbit Ethernet — the faster fabric the paper suggests would
    /// improve scaling further (§V-A).
    pub fn ethernet_100g() -> Self {
        LinkProfile {
            name: "100GbE",
            latency_seconds: 30.0e-6,
            bandwidth_bytes_per_s: 11.0e9,
        }
    }

    /// PCIe 3.0 x16 with pinned host memory: ≈12 GB/s, ≈10 µs per transfer
    /// ("pinned memory functionality offered by CUDA to achieve maximum
    /// throughput over the PCIe interface").
    pub fn pcie3_x16() -> Self {
        LinkProfile {
            name: "PCIe 3.0 x16",
            latency_seconds: 10.0e-6,
            bandwidth_bytes_per_s: 12.0e9,
        }
    }

    /// Time to move one message of `bytes` across the link.
    #[inline]
    pub fn transfer_seconds(&self, bytes: usize) -> Seconds {
        self.latency_seconds + bytes as f64 / self.bandwidth_bytes_per_s
    }

    /// Reduce: `workers` messages of `bytes` each arriving at the master.
    ///
    /// Modeled as a binomial-tree reduction (what Open MPI uses for large
    /// communicators): ⌈log₂ K⌉ rounds, each moving one message.
    pub fn reduce_seconds(&self, workers: usize, bytes: usize) -> Seconds {
        if workers <= 1 {
            return 0.0;
        }
        let rounds = usize::BITS as usize - (workers - 1).leading_zeros() as usize;
        rounds as f64 * self.transfer_seconds(bytes)
    }

    /// Broadcast: the master's `bytes` reaching all `workers`
    /// (binomial tree, same round structure as [`Self::reduce_seconds`]).
    pub fn broadcast_seconds(&self, workers: usize, bytes: usize) -> Seconds {
        self.reduce_seconds(workers, bytes)
    }

    /// Control-plane cost of re-requesting a lost round: the master's
    /// retry request plus the worker's acknowledgement — two latency-bound
    /// messages carrying no payload.
    pub fn retry_request_seconds(&self) -> Seconds {
        2.0 * self.latency_seconds
    }

    /// One synchronous aggregation step: Reduce of every worker's Δ-vector
    /// plus Broadcast of the result, both of `bytes`, plus `extra_scalars`
    /// f64 values (the adaptive-aggregation bookkeeping) piggybacked on the
    /// reduce.
    pub fn aggregation_round_seconds(
        &self,
        workers: usize,
        bytes: usize,
        extra_scalars: usize,
    ) -> Seconds {
        self.codec_round_seconds(workers, bytes, workers, bytes, extra_scalars)
    }

    /// One synchronous aggregation step whose two legs carry *encoded*
    /// payloads of different sizes — the wire-format generalization of
    /// [`Self::aggregation_round_seconds`]. The reduce moves
    /// `upload_bytes` per message over the `reduce_workers` survivors;
    /// the broadcast moves `download_bytes` to all `broadcast_workers`.
    /// With `upload_bytes == download_bytes` and equal worker counts this
    /// is exactly the dense round, so `--wire raw` charges are unchanged.
    pub fn codec_round_seconds(
        &self,
        reduce_workers: usize,
        upload_bytes: usize,
        broadcast_workers: usize,
        download_bytes: usize,
        extra_scalars: usize,
    ) -> Seconds {
        self.reduce_seconds(reduce_workers, upload_bytes + extra_scalars * 8)
            + self.broadcast_seconds(broadcast_workers, download_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_has_latency_floor() {
        let link = LinkProfile::ethernet_10g();
        assert!((link.transfer_seconds(0) - 50.0e-6).abs() < 1e-12);
        let t = link.transfer_seconds(1_100_000_000);
        assert!((t - (50.0e-6 + 1.0)).abs() < 1e-6);
    }

    #[test]
    fn single_worker_needs_no_network() {
        let link = LinkProfile::ethernet_10g();
        assert_eq!(link.reduce_seconds(1, 1_000_000), 0.0);
        assert_eq!(link.broadcast_seconds(1, 1_000_000), 0.0);
        assert_eq!(link.aggregation_round_seconds(1, 1_000_000, 3), 0.0);
    }

    #[test]
    fn tree_rounds_grow_logarithmically() {
        let link = LinkProfile::ethernet_10g();
        let b = 1_000_000;
        let t2 = link.reduce_seconds(2, b);
        let t4 = link.reduce_seconds(4, b);
        let t8 = link.reduce_seconds(8, b);
        assert!((t4 / t2 - 2.0).abs() < 1e-9);
        assert!((t8 / t2 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn retry_request_is_latency_bound() {
        let link = LinkProfile::ethernet_10g();
        assert!((link.retry_request_seconds() - 100.0e-6).abs() < 1e-12);
        // No payload: cheaper than moving even a small shared vector.
        assert!(link.retry_request_seconds() < link.transfer_seconds(1 << 20));
    }

    #[test]
    fn pcie_beats_ethernet() {
        let eth = LinkProfile::ethernet_10g();
        let pcie = LinkProfile::pcie3_x16();
        let b = 4 * 262_938; // webspam shared vector
        assert!(pcie.aggregation_round_seconds(4, b, 3) < eth.aggregation_round_seconds(4, b, 3));
    }

    #[test]
    fn adaptive_extra_scalars_are_negligible() {
        // The paper: "the additional communication ... amounts to the
        // transfer of a few scalars over the network interface per epoch".
        let link = LinkProfile::ethernet_10g();
        let b = 4 * 262_938;
        let plain = link.aggregation_round_seconds(8, b, 0);
        let adaptive = link.aggregation_round_seconds(8, b, 3);
        assert!((adaptive - plain) / plain < 1e-4);
    }

    #[test]
    fn webspam_round_is_milliseconds_on_10gbe() {
        // 8 workers exchanging a 1 MB shared vector should cost single-digit
        // milliseconds — small against a ≈0.5 s GPU epoch but visible, which
        // is what makes Fig. 9's ≈17% communication share at K=8 plausible
        // once per-epoch time shrinks with K.
        let link = LinkProfile::ethernet_10g();
        let t = link.aggregation_round_seconds(8, 4 * 262_938, 3);
        assert!((1e-3..2e-2).contains(&t), "got {t}");
    }
}

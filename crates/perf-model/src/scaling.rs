//! Scale-preserving adjustment of hardware profiles for shrunken stand-in
//! datasets.
//!
//! A stand-in dataset thousands of times smaller than the original distorts
//! *ratios*: per-epoch compute shrinks by the nonzero ratio, the exchanged
//! shared vector by a (smaller) dimension ratio, and fixed per-message /
//! per-launch costs not at all. Left unscaled, a reproduction run would be
//! latency- and overhead-bound in ways the paper's testbed was not. These
//! helpers rescale exactly the scale-sensitive terms:
//!
//! * [`scale_link`] — message latency ÷ compute scale; bandwidth ×
//!   (compute scale / vector scale), so both the latency and the
//!   bytes-over-bandwidth term keep their original proportion to an epoch's
//!   compute.
//! * [`scale_gpu`] — kernel-launch cost (per epoch) ÷ compute scale;
//!   block-scheduling cost (per coordinate) ÷ per-coordinate-work scale.
//! * [`scale_cpu`] — host dense-vector bookkeeping rate × (compute scale /
//!   vector scale), the same correction as the link bandwidth.
//!
//! The scale factors are ratios of *paper quantities to stand-in
//! quantities*: `compute_scale` = paper nonzeros / stand-in nonzeros,
//! `vector_scale` = paper shared-vector length / stand-in shared-vector
//! length, `coord_scale` = paper nonzeros-per-coordinate / stand-in
//! nonzeros-per-coordinate.

use crate::{CpuProfile, GpuProfile, LinkProfile};

/// Rescale a link profile (see module docs).
///
/// # Panics
/// Panics if either scale is not strictly positive.
pub fn scale_link(base: &LinkProfile, compute_scale: f64, vector_scale: f64) -> LinkProfile {
    assert!(
        compute_scale > 0.0 && vector_scale > 0.0,
        "scales must be positive"
    );
    LinkProfile {
        name: base.name,
        latency_seconds: base.latency_seconds / compute_scale,
        bandwidth_bytes_per_s: base.bandwidth_bytes_per_s * compute_scale / vector_scale,
    }
}

/// Rescale a GPU profile's fixed costs (see module docs).
///
/// # Panics
/// Panics if either scale is not strictly positive.
pub fn scale_gpu(base: &GpuProfile, compute_scale: f64, coord_scale: f64) -> GpuProfile {
    assert!(
        compute_scale > 0.0 && coord_scale > 0.0,
        "scales must be positive"
    );
    GpuProfile {
        kernel_launch_seconds: base.kernel_launch_seconds / compute_scale,
        block_overhead_seconds: base.block_overhead_seconds / coord_scale,
        ..base.clone()
    }
}

/// Rescale a CPU profile's host vector-bookkeeping rate (see module docs).
///
/// # Panics
/// Panics if either scale is not strictly positive.
pub fn scale_cpu(base: &CpuProfile, compute_scale: f64, vector_scale: f64) -> CpuProfile {
    assert!(
        compute_scale > 0.0 && vector_scale > 0.0,
        "scales must be positive"
    );
    CpuProfile {
        host_stream_bytes_per_s: base.host_stream_bytes_per_s * compute_scale / vector_scale,
        ..base.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_link_adjusts_both_terms() {
        let base = LinkProfile::ethernet_10g();
        let s = scale_link(&base, 1000.0, 100.0);
        assert!((s.latency_seconds - base.latency_seconds / 1000.0).abs() < 1e-18);
        assert!(
            (s.bandwidth_bytes_per_s - base.bandwidth_bytes_per_s * 10.0).abs()
                < 1.0
        );
        assert_eq!(s.name, base.name);
    }

    #[test]
    fn scale_identity_is_noop() {
        let base = LinkProfile::pcie3_x16();
        let s = scale_link(&base, 1.0, 1.0);
        assert_eq!(s.latency_seconds, base.latency_seconds);
        assert_eq!(s.bandwidth_bytes_per_s, base.bandwidth_bytes_per_s);
        let g = GpuProfile::quadro_m4000();
        let sg = scale_gpu(&g, 1.0, 1.0);
        assert_eq!(sg.kernel_launch_seconds, g.kernel_launch_seconds);
        assert_eq!(sg.block_overhead_seconds, g.block_overhead_seconds);
        let c = CpuProfile::xeon_e5_2640();
        let sc = scale_cpu(&c, 1.0, 1.0);
        assert_eq!(sc.host_stream_bytes_per_s, c.host_stream_bytes_per_s);
    }

    #[test]
    fn scale_gpu_leaves_streaming_terms_alone() {
        let g = GpuProfile::titan_x_maxwell();
        let s = scale_gpu(&g, 5000.0, 40.0);
        assert_eq!(s.mem_bandwidth_bytes_per_s, g.mem_bandwidth_bytes_per_s);
        assert_eq!(s.mem_efficiency, g.mem_efficiency);
        assert_eq!(s.sm_count, g.sm_count);
        assert!(s.kernel_launch_seconds < g.kernel_launch_seconds);
        assert!(s.block_overhead_seconds < g.block_overhead_seconds);
    }

    #[test]
    #[should_panic(expected = "scales must be positive")]
    fn zero_scale_rejected() {
        let _ = scale_link(&LinkProfile::ethernet_10g(), 0.0, 1.0);
    }
}

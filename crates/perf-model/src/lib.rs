//! Calibrated hardware cost models for the TPA-SCD reproduction.
//!
//! The paper's experiments report wall-clock seconds on specific hardware:
//! 8-core Intel Xeon E5 machines (2.40 GHz, 16 hardware threads), NVIDIA
//! Quadro M4000 and GeForce GTX Titan X GPUs, a 10 Gbit Ethernet cluster
//! link, and PCIe 3.0 between host and device. None of that hardware exists
//! in this environment, so *seconds* axes of the reproduced figures come from
//! the analytic models in this crate, applied to **operation counts measured
//! from real executions** of the algorithms (epochs, nonzeros touched, bytes
//! moved, atomics issued).
//!
//! Every calibration constant lives here, in one place, so the mapping from
//! "paper hardware" to "model parameters" is auditable. The calibration
//! targets are the paper's own headline ratios (§III-D and §V): sequential
//! webspam epochs of a few seconds, ≈2× for A-SCD and ≈4× for PASSCoDe-Wild
//! at 16 threads, ≈10–14× for TPA-SCD on the M4000 and ≈25–35× on the
//! Titan X, and a communication share of ≈17% at 8 workers on 10 GbE.

pub mod cpu;
pub mod gpu;
pub mod net;
pub mod scaling;

pub use cpu::{AsyncCpuMode, CpuProfile};
pub use gpu::GpuProfile;
pub use net::LinkProfile;

/// Seconds, as a plain f64 — all models produce simulated seconds.
pub type Seconds = f64;

/// A complete testbed description: which CPU the host uses, which GPU (if
/// any) accelerates the local solver, and which links carry traffic.
#[derive(Debug, Clone)]
pub struct Testbed {
    /// Host CPU on every worker.
    pub cpu: CpuProfile,
    /// Accelerator, when the local solver is TPA-SCD.
    pub gpu: Option<GpuProfile>,
    /// Worker ↔ master network link.
    pub network: LinkProfile,
    /// Host ↔ device link (meaningful only when `gpu` is set).
    pub pcie: LinkProfile,
}

impl Testbed {
    /// The paper's CPU cluster: Xeon hosts on 10 GbE, no GPU.
    pub fn cpu_cluster() -> Self {
        Testbed {
            cpu: CpuProfile::xeon_e5_2640(),
            gpu: None,
            network: LinkProfile::ethernet_10g(),
            pcie: LinkProfile::pcie3_x16(),
        }
    }

    /// The paper's M4000 cluster: one M4000 per Xeon host, 10 GbE between hosts.
    pub fn m4000_cluster() -> Self {
        Testbed {
            cpu: CpuProfile::xeon_e5_2640(),
            gpu: Some(GpuProfile::quadro_m4000()),
            network: LinkProfile::ethernet_10g(),
            pcie: LinkProfile::pcie3_x16(),
        }
    }

    /// The paper's Titan X box: 4 Titan X GPUs in one host, workers
    /// communicating over PCIe.
    pub fn titan_x_box() -> Self {
        Testbed {
            cpu: CpuProfile::xeon_e5_2640(),
            gpu: Some(GpuProfile::titan_x_maxwell()),
            network: LinkProfile::pcie3_x16(),
            pcie: LinkProfile::pcie3_x16(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbeds_are_consistent() {
        let cpu = Testbed::cpu_cluster();
        assert!(cpu.gpu.is_none());
        let m4000 = Testbed::m4000_cluster();
        assert_eq!(m4000.gpu.as_ref().unwrap().name, "Quadro M4000");
        let titan = Testbed::titan_x_box();
        assert_eq!(titan.gpu.as_ref().unwrap().name, "GTX Titan X");
        // The Titan X box communicates over PCIe, which must be faster than
        // the Ethernet link of the other testbeds.
        assert!(titan.network.bandwidth_bytes_per_s > cpu.network.bandwidth_bytes_per_s);
    }
}

//! GPU cost model.
//!
//! TPA-SCD is memory-bound: every coordinate update streams a sparse column
//! (value + index pairs) out of device memory, gathers from the dense shared
//! vector, and writes back with float atomic additions. The model is a
//! per-block roofline — a thread block's execution time is the maximum of
//! its compute time (lane-ops over the SM's cores) and its memory time
//! (bytes over the SM's share of device bandwidth) plus a scheduling
//! overhead — and the `gpu-sim` crate feeds it **measured** per-block
//! operation counts and schedules blocks onto SMs.
//!
//! Device parameters are the published specs of the paper's two GPUs;
//! `mem_efficiency` (the achieved fraction of peak bandwidth under the
//! scattered access pattern of sparse coordinate updates) and the atomic
//! surcharge are calibrated so the end-to-end webspam speed-ups land in the
//! paper's 10–35× band (§III-D).

use crate::Seconds;

/// An analytic GPU performance profile.
#[derive(Debug, Clone)]
pub struct GpuProfile {
    /// Marketing name, used in reports.
    pub name: &'static str,
    /// Streaming multiprocessors.
    pub sm_count: usize,
    /// CUDA cores per SM (Maxwell: 128).
    pub cores_per_sm: usize,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Peak device-memory bandwidth in bytes/s.
    pub mem_bandwidth_bytes_per_s: f64,
    /// Achieved fraction of peak bandwidth under sparse scattered access.
    pub mem_efficiency: f64,
    /// Effective extra memory traffic charged per atomic addition, in bytes
    /// (read-modify-write plus serialization under contention).
    pub atomic_cost_bytes: f64,
    /// Fixed cost to schedule one thread block onto an SM. Maxwell retires
    /// small resident blocks at sub-microsecond rates when the grid is
    /// deep, so this is the *amortized* per-block cost.
    pub block_overhead_seconds: f64,
    /// Fixed cost per kernel launch.
    pub kernel_launch_seconds: f64,
    /// Device memory capacity in bytes (the paper's 8 GB / 12 GB limits).
    pub mem_capacity_bytes: usize,
    /// Shared-memory bytes available to one thread block (Maxwell: 48 KB).
    pub shared_mem_per_block_bytes: usize,
}

impl GpuProfile {
    /// NVIDIA Quadro M4000 (Maxwell GM204): 13 SMs, 1664 cores, 773 MHz,
    /// 192 GB/s, 8 GB — the paper notes webspam's 7.3 GB "fits inside the
    /// memory capacity of the M4000 (the limit is 8 GB)".
    pub fn quadro_m4000() -> Self {
        GpuProfile {
            name: "Quadro M4000",
            sm_count: 13,
            cores_per_sm: 128,
            clock_hz: 773.0e6,
            mem_bandwidth_bytes_per_s: 192.0e9,
            mem_efficiency: 0.42,
            atomic_cost_bytes: 8.0,
            block_overhead_seconds: 0.4e-6,
            kernel_launch_seconds: 10.0e-6,
            mem_capacity_bytes: 8 * (1 << 30),
            shared_mem_per_block_bytes: 48 << 10,
        }
    }

    /// NVIDIA GeForce GTX Titan X (Maxwell GM200): 24 SMs, 3072 cores,
    /// 1000 MHz, 336 GB/s, 12 GB.
    pub fn titan_x_maxwell() -> Self {
        GpuProfile {
            name: "GTX Titan X",
            sm_count: 24,
            cores_per_sm: 128,
            clock_hz: 1000.0e6,
            mem_bandwidth_bytes_per_s: 336.0e9,
            mem_efficiency: 0.62,
            atomic_cost_bytes: 8.0,
            block_overhead_seconds: 0.3e-6,
            kernel_launch_seconds: 10.0e-6,
            mem_capacity_bytes: 12 * (1 << 30),
            shared_mem_per_block_bytes: 48 << 10,
        }
    }

    /// Achieved bandwidth available to one SM when all SMs stream
    /// concurrently.
    #[inline]
    pub fn per_sm_bandwidth(&self) -> f64 {
        self.mem_bandwidth_bytes_per_s * self.mem_efficiency / self.sm_count as f64
    }

    /// Roofline time for one thread block that executed `lane_ops` lane
    /// operations, moved `bytes` of global memory, and issued `atomics`
    /// atomic additions.
    pub fn block_seconds(&self, lane_ops: u64, bytes: u64, atomics: u64) -> Seconds {
        let compute = lane_ops as f64 / (self.cores_per_sm as f64 * self.clock_hz);
        let traffic = bytes as f64 + atomics as f64 * self.atomic_cost_bytes;
        let memory = traffic / self.per_sm_bandwidth();
        self.block_overhead_seconds + compute.max(memory)
    }

    /// Whether a dataset of `bytes` fits in device memory — the constraint
    /// that forces the move to distributed training in §IV.
    pub fn fits_in_memory(&self, bytes: usize) -> bool {
        bytes <= self.mem_capacity_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn webspam_fits_m4000_but_criteo_does_not() {
        // The paper's motivating capacity facts.
        let m4000 = GpuProfile::quadro_m4000();
        let webspam_bytes = 7_300_000_000usize; // ≈7.3 GB
        let criteo_bytes = 40_000_000_000usize; // ≈40 GB
        assert!(m4000.fits_in_memory(webspam_bytes));
        assert!(!m4000.fits_in_memory(criteo_bytes));
        let titan = GpuProfile::titan_x_maxwell();
        assert!(!titan.fits_in_memory(criteo_bytes));
    }

    #[test]
    fn titan_x_is_faster_than_m4000() {
        let m = GpuProfile::quadro_m4000();
        let t = GpuProfile::titan_x_maxwell();
        // Same block workload must be strictly faster on the Titan X.
        let work = (10_000u64, 80_000u64, 3_000u64);
        assert!(t.block_seconds(work.0, work.1, work.2) < m.block_seconds(work.0, work.1, work.2));
    }

    #[test]
    fn block_time_has_floor_and_scales() {
        let g = GpuProfile::quadro_m4000();
        let empty = g.block_seconds(0, 0, 0);
        assert!((empty - g.block_overhead_seconds).abs() < 1e-15);
        let small = g.block_seconds(100, 800, 100);
        let big = g.block_seconds(100_000, 800_000, 100_000);
        assert!(big > small && small > empty);
    }

    #[test]
    fn memory_bound_blocks_ignore_extra_lane_ops() {
        let g = GpuProfile::quadro_m4000();
        // Heavy traffic, trivial compute: adding compute below the roofline
        // must not change the time.
        let base = g.block_seconds(10, 1_000_000, 0);
        let more_compute = g.block_seconds(1_000, 1_000_000, 0);
        assert!((base - more_compute).abs() < 1e-15);
    }

    #[test]
    fn atomics_are_charged_as_traffic() {
        let g = GpuProfile::quadro_m4000();
        let without = g.block_seconds(0, 1_000_000, 0);
        let with = g.block_seconds(0, 1_000_000, 100_000);
        let expected_extra = 100_000.0 * g.atomic_cost_bytes / g.per_sm_bandwidth();
        assert!(((with - without) - expected_extra).abs() < 1e-12);
    }

    #[test]
    fn whole_device_webspam_epoch_in_paper_band() {
        // End-to-end sanity: an epoch that streams webspam's ≈9e8 nonzeros
        // (8 B of CSC data + 4 B dense gather each) and issues one atomic per
        // nnz, split evenly across SMs, should cost tenths of a second —
        // the regime that yields the paper's 10–35× over a ≈5 s CPU epoch.
        for g in [GpuProfile::quadro_m4000(), GpuProfile::titan_x_maxwell()] {
            let nnz_total: u64 = 900_000_000;
            let per_sm = nnz_total / g.sm_count as u64;
            let t = g.block_seconds(2 * per_sm, 12 * per_sm, per_sm) * 1.0; // one mega-block per SM
            assert!(
                (0.05..1.0).contains(&t),
                "{}: epoch estimate {t} outside band",
                g.name
            );
        }
    }
}

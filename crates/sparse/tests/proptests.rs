//! Property-based tests of the sparse substrate: format conversions are
//! lossless, matrix products agree across formats and with a dense
//! reference, and permutations behave like group elements.

use proptest::prelude::*;
use scd_sparse::perm::Permutation;
use scd_sparse::{kernels, CooMatrix, EllMatrix, SparseError};

/// Strategy: a random small COO matrix with unique (row, col) slots.
fn arb_coo() -> impl Strategy<Value = CooMatrix> {
    (1usize..12, 1usize..12).prop_flat_map(|(rows, cols)| {
        let entry = (0..rows, 0..cols, -100i32..100);
        proptest::collection::vec(entry, 0..40).prop_map(move |entries| {
            let mut coo = CooMatrix::new(rows, cols);
            for (r, c, v) in entries {
                coo.push(r, c, v as f32 / 10.0).unwrap();
            }
            coo
        })
    })
}

/// Dense reference mat-vec.
fn dense_matvec(dense: &[Vec<f32>], x: &[f32]) -> Vec<f32> {
    dense
        .iter()
        .map(|row| row.iter().zip(x).map(|(&a, &b)| a * b).sum())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn csr_csc_roundtrip_is_lossless(coo in arb_coo()) {
        let csr = coo.to_csr();
        let back = csr.to_csc().to_csr();
        prop_assert_eq!(&csr, &back);
        let csc = coo.to_csc();
        let back = csc.to_csr().to_csc();
        prop_assert_eq!(&csc, &back);
    }

    #[test]
    fn matvec_agrees_across_formats_and_with_dense(coo in arb_coo()) {
        let dense = coo.to_dense();
        let csr = coo.to_csr();
        let csc = coo.to_csc();
        let x: Vec<f32> = (0..coo.cols()).map(|i| (i as f32 * 0.7) - 1.0).collect();
        let want = dense_matvec(&dense, &x);
        let via_csr = csr.matvec(&x).unwrap();
        let via_csc = csc.matvec(&x).unwrap();
        for ((a, b), c) in want.iter().zip(&via_csr).zip(&via_csc) {
            prop_assert!((a - b).abs() < 1e-4);
            prop_assert!((b - c).abs() < 1e-4);
        }
    }

    #[test]
    fn matvec_t_is_the_transpose(coo in arb_coo()) {
        // ⟨A x, y⟩ = ⟨x, Aᵀ y⟩ for all x, y.
        let csr = coo.to_csr();
        let x: Vec<f32> = (0..coo.cols()).map(|i| ((i * 3 % 7) as f32) - 3.0).collect();
        let y: Vec<f32> = (0..coo.rows()).map(|i| ((i * 5 % 11) as f32) - 5.0).collect();
        let ax = csr.matvec(&x).unwrap();
        let aty = csr.matvec_t(&y).unwrap();
        let lhs: f64 = ax.iter().zip(&y).map(|(&a, &b)| a as f64 * b as f64).sum();
        let rhs: f64 = x.iter().zip(&aty).map(|(&a, &b)| a as f64 * b as f64).sum();
        prop_assert!((lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0));
    }

    #[test]
    fn matvec_into_bit_identical_to_allocating_forms(coo in arb_coo()) {
        // The workspace variants must be drop-in replacements: same bits,
        // even with garbage in the output buffer, and across matrices
        // with empty rows/cols (arb_coo leaves many slots unfilled).
        let csr = coo.to_csr();
        let csc = coo.to_csc();
        let x: Vec<f32> = (0..coo.cols()).map(|i| (i as f32 * 0.7) - 1.0).collect();
        let y: Vec<f32> = (0..coo.rows()).map(|i| ((i * 5 % 11) as f32) - 5.0).collect();
        let bits = |v: &[f32]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        let mut out_r = vec![f32::NAN; coo.rows()];
        csr.matvec_into(&x, &mut out_r).unwrap();
        prop_assert_eq!(bits(&out_r), bits(&csr.matvec(&x).unwrap()));
        let mut out_c = vec![f32::NAN; coo.rows()];
        csc.matvec_into(&x, &mut out_c).unwrap();
        prop_assert_eq!(bits(&out_c), bits(&csc.matvec(&x).unwrap()));
        let mut out_rt = vec![f32::NAN; coo.cols()];
        csr.matvec_t_into(&y, &mut out_rt).unwrap();
        prop_assert_eq!(bits(&out_rt), bits(&csr.matvec_t(&y).unwrap()));
        let mut out_ct = vec![f32::NAN; coo.cols()];
        csc.matvec_t_into(&y, &mut out_ct).unwrap();
        prop_assert_eq!(bits(&out_ct), bits(&csc.matvec_t(&y).unwrap()));
    }

    #[test]
    fn in_place_merge_bit_identical_including_ell_replicas(coo in arb_coo(), workers in 1usize..5) {
        // Replicas perturbed through the ELL fast-path writes (the layout
        // the SySCD workers actually use), then merged both ways: the
        // in-place fold over the shared vector must match the out-of-place
        // kernel against the pre-merge snapshot, bit for bit.
        let csr = coo.to_csr();
        let ell = EllMatrix::from_csr(&csr);
        let base: Vec<f32> = (0..coo.cols()).map(|i| ((i * 3 % 7) as f32) * 0.3 - 0.9).collect();
        let replicas: Vec<Vec<f32>> = (0..workers)
            .map(|w| {
                let mut r = base.clone();
                for row in (w..csr.rows()).step_by(workers.max(1)) {
                    ell.row_axpy(row, 0.25 + w as f32 * 0.5, &mut r);
                }
                r
            })
            .collect();
        let views: Vec<&[f32]> = replicas.iter().map(Vec::as_slice).collect();
        let scale = 1.0 / workers as f32;
        let mut out = vec![f32::NAN; base.len()];
        kernels::merge_replicas(&base, &views, scale, &mut out);
        let mut shared = base.clone();
        kernels::merge_replicas_in_place(&views, scale, &mut shared);
        let bits = |v: &[f32]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&out), bits(&shared));
    }

    #[test]
    fn norms_match_values(coo in arb_coo()) {
        let csr = coo.to_csr();
        let total_from_rows: f64 = csr.row_squared_norms().iter().sum();
        let total_from_cols: f64 = coo.to_csc().col_squared_norms().iter().sum();
        prop_assert!((total_from_rows - total_from_cols).abs() < 1e-6 * total_from_rows.max(1.0));
    }

    #[test]
    fn select_rows_preserves_content(coo in arb_coo(), stride in 1usize..4) {
        let csr = coo.to_csr();
        let rows: Vec<usize> = (0..csr.rows()).step_by(stride).collect();
        let sub = csr.select_rows(&rows);
        prop_assert_eq!(sub.rows(), rows.len());
        for (local, &global) in rows.iter().enumerate() {
            prop_assert_eq!(sub.row(local).indices, csr.row(global).indices);
            prop_assert_eq!(sub.row(local).values, csr.row(global).values);
        }
    }

    #[test]
    fn validation_catches_corrupted_offsets(coo in arb_coo()) {
        let csr = coo.to_csr();
        prop_assume!(csr.nnz() > 0);
        let mut offsets = csr.offsets().to_vec();
        // Corrupt: final offset no longer equals nnz.
        *offsets.last_mut().unwrap() += 1;
        let result = scd_sparse::CsrMatrix::from_raw(
            csr.rows(), csr.cols(), offsets, csr.indices().to_vec(), csr.values().to_vec());
        prop_assert!(matches!(result, Err(SparseError::InvalidStructure(_))));
    }

    #[test]
    fn permutation_inverse_roundtrips(len in 1usize..200, seed in 0u64..1000) {
        let p = Permutation::random(len, seed);
        let inv = p.inverse();
        for i in 0..len {
            prop_assert_eq!(inv.apply(p.apply(i)), i);
        }
        // gather(inverse) undoes gather.
        let data: Vec<u32> = (0..len as u32).collect();
        let shuffled = p.gather(&data);
        let restored = inv.gather(&shuffled);
        prop_assert_eq!(restored, data);
    }

    #[test]
    fn unrolled_dot_diverges_from_reference_within_reassociation_bound(coo in arb_coo()) {
        // The kernels module's accumulation contract: unrolled lanes and the
        // left-to-right reference sum the same *exact* f64 products, so the
        // divergence is pure reassociation error, bounded by 2(n−1)·ε·Σ|pₖ|.
        // This is what keeps the golden figure series (pinned to the
        // reference order) stable while the solver hot loops use the lanes.
        let csr = coo.to_csr();
        let x: Vec<f32> = (0..csr.cols()).map(|i| (i as f32 * 0.37) - 1.5).collect();
        for r in 0..csr.rows() {
            let row = csr.row(r);
            let reference = row.dot_dense(&x);
            let unrolled = kernels::dot_dense(row.indices, row.values, &x);
            let abs_sum: f64 = row.indices.iter().zip(row.values)
                .map(|(&i, &v)| (x[i as usize] as f64 * v as f64).abs())
                .sum();
            let n = row.nnz() as f64;
            let bound = 2.0 * n * f64::EPSILON * abs_sum;
            prop_assert!(
                (unrolled - reference).abs() <= bound,
                "row {}: unrolled {} vs reference {} exceeds bound {}",
                r, unrolled, reference, bound
            );
        }
    }

    #[test]
    fn ell_row_kernels_bit_identical_to_csr(coo in arb_coo()) {
        // Layout choice (CSR stream vs strided ELL block) must never perturb
        // a solver trajectory: same products, same lane order, same
        // reduction tree ⇒ identical bits.
        let csr = coo.to_csr();
        let ell = EllMatrix::from_csr(&csr);
        let x: Vec<f32> = (0..csr.cols()).map(|i| ((i * 7 % 13) as f32) / 3.0 - 1.0).collect();
        let mut dense_csr = vec![0.25f32; csr.cols()];
        let mut dense_ell = dense_csr.clone();
        for r in 0..csr.rows() {
            let row = csr.row(r);
            let a = kernels::dot_dense(row.indices, row.values, &x);
            let b = ell.row_dot(r, &x);
            prop_assert_eq!(a.to_bits(), b.to_bits());
            row.axpy_into(0.5, &mut dense_csr);
            ell.row_axpy(r, 0.5, &mut dense_ell);
        }
        let bits_csr: Vec<u32> = dense_csr.iter().map(|v| v.to_bits()).collect();
        let bits_ell: Vec<u32> = dense_ell.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(bits_csr, bits_ell);
    }

    #[test]
    fn gather_dot_matches_slice_dot_bitwise(coo in arb_coo()) {
        let csr = coo.to_csr();
        let x: Vec<f32> = (0..csr.cols()).map(|i| (i as f32).sin()).collect();
        for r in 0..csr.rows() {
            let row = csr.row(r);
            let a = kernels::dot_dense(row.indices, row.values, &x);
            let b = kernels::dot_gather(row.indices, row.values, |i| x[i]);
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn libsvm_roundtrip_preserves_data(coo in arb_coo(), labels_seed in 0u64..100) {
        use scd_sparse::io::{read_libsvm, write_libsvm, LabelledData};
        let labels: Vec<f32> = (0..coo.rows())
            .map(|i| if (i as u64 + labels_seed) % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let cols = coo.cols();
        let data = LabelledData { matrix: coo, labels };
        let mut buf = Vec::new();
        write_libsvm(&data, &mut buf).unwrap();
        let back = read_libsvm(buf.as_slice(), Some(cols)).unwrap();
        prop_assert_eq!(back.labels, data.labels);
        prop_assert_eq!(back.matrix.to_dense(), data.matrix.to_dense());
    }
}

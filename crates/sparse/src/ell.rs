//! ELLPACK format — the GPU-friendly fixed-width sparse layout.
//!
//! The paper stores the matrix in CSR/CSC. ELLPACK is the classic
//! alternative for GPU sparse kernels: every row is padded to the width of
//! the longest row and the slots are stored **slot-major**, so lane `u` of
//! a warp reading slot `s` of consecutive rows touches consecutive memory —
//! perfectly coalesced. The price is padding: a matrix with skewed row
//! lengths (webspam) wastes storage and bandwidth on empty slots, while a
//! matrix with uniform rows (criteo's one-hot encoding: exactly one nonzero
//! per field) pads nothing.
//!
//! The `layout` ablation in `scd-bench` measures exactly this trade-off on
//! the TPA-SCD dual kernel.

use crate::{kernels, CsrMatrix};

/// Sentinel column index marking a padding slot.
pub const ELL_PAD: u32 = u32::MAX;

/// A sparse matrix in slot-major ELLPACK layout.
#[derive(Debug, Clone, PartialEq)]
pub struct EllMatrix {
    rows: usize,
    cols: usize,
    /// Slots per row (the maximum row nnz).
    width: usize,
    /// Column indices, slot-major: `indices[s * rows + r]`; padding slots
    /// hold [`ELL_PAD`].
    indices: Vec<u32>,
    /// Values aligned with `indices`; padding slots hold 0.0.
    values: Vec<f32>,
    /// True (stored) nonzeros, excluding padding.
    nnz: usize,
    /// Stored entries per row. `from_csr` packs each row's entries into
    /// its leading slots, so row `r`'s live slots are exactly
    /// `0..row_nnz[r]` — what the strided row kernels iterate instead of
    /// branching on [`ELL_PAD`].
    row_nnz: Vec<u32>,
}

impl EllMatrix {
    /// Convert from CSR. The width becomes the longest row's nnz.
    pub fn from_csr(csr: &CsrMatrix) -> Self {
        let rows = csr.rows();
        let width = (0..rows).map(|r| csr.row(r).nnz()).max().unwrap_or(0);
        let mut indices = vec![ELL_PAD; rows * width];
        let mut values = vec![0.0f32; rows * width];
        for r in 0..rows {
            let row = csr.row(r);
            for (s, (&c, &v)) in row.indices.iter().zip(row.values).enumerate() {
                indices[s * rows + r] = c;
                values[s * rows + r] = v;
            }
        }
        let row_nnz = (0..rows).map(|r| csr.row(r).nnz() as u32).collect();
        EllMatrix {
            rows,
            cols: csr.cols(),
            width,
            indices,
            values,
            nnz: csr.nnz(),
            row_nnz,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Slots per row.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// True nonzeros (excluding padding).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Stored slots including padding.
    #[inline]
    pub fn slots(&self) -> usize {
        self.rows * self.width
    }

    /// Padding overhead: stored slots per true nonzero (1.0 = no padding).
    pub fn padding_ratio(&self) -> f64 {
        if self.nnz == 0 {
            return 1.0;
        }
        self.slots() as f64 / self.nnz as f64
    }

    /// Entry at (slot, row): `Some((col, value))` or `None` for padding.
    #[inline]
    pub fn slot(&self, s: usize, r: usize) -> Option<(usize, f32)> {
        let idx = self.indices[s * self.rows + r];
        if idx == ELL_PAD {
            None
        } else {
            Some((idx as usize, self.values[s * self.rows + r]))
        }
    }

    /// Iterate row `r`'s stored entries as `(col, value)`.
    pub fn iter_row(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        (0..self.width).filter_map(move |s| self.slot(s, r))
    }

    /// Dense product `out = A x`.
    ///
    /// # Panics
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "matvec: length mismatch");
        let mut out = vec![0.0f32; self.rows];
        for s in 0..self.width {
            let base = s * self.rows;
            for (r, out_r) in out.iter_mut().enumerate() {
                let c = self.indices[base + r];
                if c != ELL_PAD {
                    *out_r += self.values[base + r] * x[c as usize];
                }
            }
        }
        out
    }

    /// Stored entries in row `r`, excluding padding.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_nnz[r] as usize
    }

    /// Unrolled inner product of row `r` with a dense vector — the
    /// CPU-side ELL fast path (SySCD bucket kernels build a small ELL
    /// block per bucket so consecutive rows share cache lines slot by
    /// slot).
    ///
    /// Walks exactly the row's `row_nnz` leading slots at stride `rows`
    /// and feeds the same products, in the same lane order and with the
    /// same [`kernels::reduce_lanes`] tree, as [`kernels::dot_dense`] on
    /// the CSR form of the row — so the two are **bit-identical**, and a
    /// solver may pick either layout without perturbing its trajectory
    /// (property-tested in `tests/proptests.rs`).
    pub fn row_dot(&self, r: usize, dense: &[f32]) -> f64 {
        let n = self.row_nnz[r] as usize;
        let stride = self.rows;
        let head = n - n % kernels::LANES;
        let mut lanes = [0.0f64; kernels::LANES];
        let mut s = 0;
        while s < head {
            let base = s * stride + r;
            lanes[0] +=
                dense[self.indices[base] as usize] as f64 * self.values[base] as f64;
            let b1 = base + stride;
            lanes[1] += dense[self.indices[b1] as usize] as f64 * self.values[b1] as f64;
            let b2 = b1 + stride;
            lanes[2] += dense[self.indices[b2] as usize] as f64 * self.values[b2] as f64;
            let b3 = b2 + stride;
            lanes[3] += dense[self.indices[b3] as usize] as f64 * self.values[b3] as f64;
            s += kernels::LANES;
        }
        let mut tail = 0.0f64;
        for s in head..n {
            let b = s * stride + r;
            tail += dense[self.indices[b] as usize] as f64 * self.values[b] as f64;
        }
        kernels::reduce_lanes(lanes, tail)
    }

    /// `dense[col] += scale · value` over row `r`'s stored entries —
    /// bit-identical to the CSR axpy (same adds to the same distinct
    /// targets, in the same order).
    pub fn row_axpy(&self, r: usize, scale: f32, dense: &mut [f32]) {
        let n = self.row_nnz[r] as usize;
        let stride = self.rows;
        for s in 0..n {
            let b = s * stride + r;
            dense[self.indices[b] as usize] += scale * self.values[b];
        }
    }

    /// Bytes of device memory the layout occupies: 8 per slot (value +
    /// index), **including padding** — the footprint the capacity check and
    /// the bandwidth model see.
    pub fn memory_bytes(&self) -> usize {
        self.slots() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn skewed() -> CsrMatrix {
        // Row lengths 3, 1, 0, 2 — width 3, 6 nnz over 12 slots.
        let mut coo = CooMatrix::new(4, 5);
        for &(r, c, v) in &[
            (0, 0, 1.0),
            (0, 2, 2.0),
            (0, 4, 3.0),
            (1, 1, 4.0),
            (3, 0, 5.0),
            (3, 3, 6.0),
        ] {
            coo.push(r, c, v).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn conversion_preserves_content() {
        let csr = skewed();
        let ell = EllMatrix::from_csr(&csr);
        assert_eq!(ell.rows(), 4);
        assert_eq!(ell.cols(), 5);
        assert_eq!(ell.width(), 3);
        assert_eq!(ell.nnz(), 6);
        for r in 0..4 {
            let from_ell: Vec<(usize, f32)> = ell.iter_row(r).collect();
            let row = csr.row(r);
            let from_csr: Vec<(usize, f32)> = row
                .indices
                .iter()
                .zip(row.values)
                .map(|(&c, &v)| (c as usize, v))
                .collect();
            assert_eq!(from_ell, from_csr, "row {r}");
        }
    }

    #[test]
    fn padding_ratio_reflects_skew() {
        let ell = EllMatrix::from_csr(&skewed());
        assert_eq!(ell.slots(), 12);
        assert!((ell.padding_ratio() - 2.0).abs() < 1e-12);
        // Uniform matrix: no padding.
        let mut coo = CooMatrix::new(3, 3);
        for r in 0..3 {
            coo.push(r, r, 1.0).unwrap();
        }
        let uniform = EllMatrix::from_csr(&coo.to_csr());
        assert_eq!(uniform.padding_ratio(), 1.0);
    }

    #[test]
    fn matvec_matches_csr() {
        let csr = skewed();
        let ell = EllMatrix::from_csr(&csr);
        let x = [1.0f32, -2.0, 0.5, 3.0, 1.5];
        assert_eq!(ell.matvec(&x), csr.matvec(&x).unwrap());
    }

    #[test]
    fn slot_major_layout_is_coalesced() {
        // Slot 0 of all rows occupies a contiguous prefix of the arrays —
        // the property a warp needs for coalescing.
        let ell = EllMatrix::from_csr(&skewed());
        assert_eq!(ell.slot(0, 0), Some((0, 1.0)));
        assert_eq!(ell.slot(0, 1), Some((1, 4.0)));
        assert_eq!(ell.slot(0, 2), None); // empty row
        assert_eq!(ell.slot(0, 3), Some((0, 5.0)));
        assert_eq!(ell.slot(2, 0), Some((4, 3.0)));
        assert_eq!(ell.slot(2, 3), None);
    }

    #[test]
    fn row_dot_bit_identical_to_csr_kernel() {
        let csr = skewed();
        let ell = EllMatrix::from_csr(&csr);
        let x = [1.25f32, -2.0, 0.5, 3.0, 1.5];
        for r in 0..csr.rows() {
            let row = csr.row(r);
            let via_csr = crate::kernels::dot_dense(row.indices, row.values, &x);
            let via_ell = ell.row_dot(r, &x);
            assert_eq!(via_csr.to_bits(), via_ell.to_bits(), "row {r}");
        }
    }

    #[test]
    fn row_axpy_bit_identical_to_csr() {
        let csr = skewed();
        let ell = EllMatrix::from_csr(&csr);
        let mut a = [0.1f32; 5];
        let mut b = a;
        for r in 0..csr.rows() {
            csr.row(r).axpy_into(-0.7, &mut a);
            ell.row_axpy(r, -0.7, &mut b);
        }
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn row_nnz_excludes_padding() {
        let ell = EllMatrix::from_csr(&skewed());
        assert_eq!(
            (0..4).map(|r| ell.row_nnz(r)).collect::<Vec<_>>(),
            vec![3, 1, 0, 2]
        );
    }

    #[test]
    fn memory_counts_padding() {
        let ell = EllMatrix::from_csr(&skewed());
        assert_eq!(ell.memory_bytes(), 12 * 8);
    }

    #[test]
    fn empty_matrix_degenerates() {
        let coo = CooMatrix::new(3, 3);
        let ell = EllMatrix::from_csr(&coo.to_csr());
        assert_eq!(ell.width(), 0);
        assert_eq!(ell.padding_ratio(), 1.0);
        assert_eq!(ell.matvec(&[1.0, 1.0, 1.0]), vec![0.0; 3]);
    }
}

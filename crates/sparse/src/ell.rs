//! ELLPACK format — the GPU-friendly fixed-width sparse layout.
//!
//! The paper stores the matrix in CSR/CSC. ELLPACK is the classic
//! alternative for GPU sparse kernels: every row is padded to the width of
//! the longest row and the slots are stored **slot-major**, so lane `u` of
//! a warp reading slot `s` of consecutive rows touches consecutive memory —
//! perfectly coalesced. The price is padding: a matrix with skewed row
//! lengths (webspam) wastes storage and bandwidth on empty slots, while a
//! matrix with uniform rows (criteo's one-hot encoding: exactly one nonzero
//! per field) pads nothing.
//!
//! The `layout` ablation in `scd-bench` measures exactly this trade-off on
//! the TPA-SCD dual kernel.

use crate::CsrMatrix;

/// Sentinel column index marking a padding slot.
pub const ELL_PAD: u32 = u32::MAX;

/// A sparse matrix in slot-major ELLPACK layout.
#[derive(Debug, Clone, PartialEq)]
pub struct EllMatrix {
    rows: usize,
    cols: usize,
    /// Slots per row (the maximum row nnz).
    width: usize,
    /// Column indices, slot-major: `indices[s * rows + r]`; padding slots
    /// hold [`ELL_PAD`].
    indices: Vec<u32>,
    /// Values aligned with `indices`; padding slots hold 0.0.
    values: Vec<f32>,
    /// True (stored) nonzeros, excluding padding.
    nnz: usize,
}

impl EllMatrix {
    /// Convert from CSR. The width becomes the longest row's nnz.
    pub fn from_csr(csr: &CsrMatrix) -> Self {
        let rows = csr.rows();
        let width = (0..rows).map(|r| csr.row(r).nnz()).max().unwrap_or(0);
        let mut indices = vec![ELL_PAD; rows * width];
        let mut values = vec![0.0f32; rows * width];
        for r in 0..rows {
            let row = csr.row(r);
            for (s, (&c, &v)) in row.indices.iter().zip(row.values).enumerate() {
                indices[s * rows + r] = c;
                values[s * rows + r] = v;
            }
        }
        EllMatrix {
            rows,
            cols: csr.cols(),
            width,
            indices,
            values,
            nnz: csr.nnz(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Slots per row.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// True nonzeros (excluding padding).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Stored slots including padding.
    #[inline]
    pub fn slots(&self) -> usize {
        self.rows * self.width
    }

    /// Padding overhead: stored slots per true nonzero (1.0 = no padding).
    pub fn padding_ratio(&self) -> f64 {
        if self.nnz == 0 {
            return 1.0;
        }
        self.slots() as f64 / self.nnz as f64
    }

    /// Entry at (slot, row): `Some((col, value))` or `None` for padding.
    #[inline]
    pub fn slot(&self, s: usize, r: usize) -> Option<(usize, f32)> {
        let idx = self.indices[s * self.rows + r];
        if idx == ELL_PAD {
            None
        } else {
            Some((idx as usize, self.values[s * self.rows + r]))
        }
    }

    /// Iterate row `r`'s stored entries as `(col, value)`.
    pub fn iter_row(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        (0..self.width).filter_map(move |s| self.slot(s, r))
    }

    /// Dense product `out = A x`.
    ///
    /// # Panics
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "matvec: length mismatch");
        let mut out = vec![0.0f32; self.rows];
        for s in 0..self.width {
            let base = s * self.rows;
            for (r, out_r) in out.iter_mut().enumerate() {
                let c = self.indices[base + r];
                if c != ELL_PAD {
                    *out_r += self.values[base + r] * x[c as usize];
                }
            }
        }
        out
    }

    /// Bytes of device memory the layout occupies: 8 per slot (value +
    /// index), **including padding** — the footprint the capacity check and
    /// the bandwidth model see.
    pub fn memory_bytes(&self) -> usize {
        self.slots() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn skewed() -> CsrMatrix {
        // Row lengths 3, 1, 0, 2 — width 3, 6 nnz over 12 slots.
        let mut coo = CooMatrix::new(4, 5);
        for &(r, c, v) in &[
            (0, 0, 1.0),
            (0, 2, 2.0),
            (0, 4, 3.0),
            (1, 1, 4.0),
            (3, 0, 5.0),
            (3, 3, 6.0),
        ] {
            coo.push(r, c, v).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn conversion_preserves_content() {
        let csr = skewed();
        let ell = EllMatrix::from_csr(&csr);
        assert_eq!(ell.rows(), 4);
        assert_eq!(ell.cols(), 5);
        assert_eq!(ell.width(), 3);
        assert_eq!(ell.nnz(), 6);
        for r in 0..4 {
            let from_ell: Vec<(usize, f32)> = ell.iter_row(r).collect();
            let row = csr.row(r);
            let from_csr: Vec<(usize, f32)> = row
                .indices
                .iter()
                .zip(row.values)
                .map(|(&c, &v)| (c as usize, v))
                .collect();
            assert_eq!(from_ell, from_csr, "row {r}");
        }
    }

    #[test]
    fn padding_ratio_reflects_skew() {
        let ell = EllMatrix::from_csr(&skewed());
        assert_eq!(ell.slots(), 12);
        assert!((ell.padding_ratio() - 2.0).abs() < 1e-12);
        // Uniform matrix: no padding.
        let mut coo = CooMatrix::new(3, 3);
        for r in 0..3 {
            coo.push(r, r, 1.0).unwrap();
        }
        let uniform = EllMatrix::from_csr(&coo.to_csr());
        assert_eq!(uniform.padding_ratio(), 1.0);
    }

    #[test]
    fn matvec_matches_csr() {
        let csr = skewed();
        let ell = EllMatrix::from_csr(&csr);
        let x = [1.0f32, -2.0, 0.5, 3.0, 1.5];
        assert_eq!(ell.matvec(&x), csr.matvec(&x).unwrap());
    }

    #[test]
    fn slot_major_layout_is_coalesced() {
        // Slot 0 of all rows occupies a contiguous prefix of the arrays —
        // the property a warp needs for coalescing.
        let ell = EllMatrix::from_csr(&skewed());
        assert_eq!(ell.slot(0, 0), Some((0, 1.0)));
        assert_eq!(ell.slot(0, 1), Some((1, 4.0)));
        assert_eq!(ell.slot(0, 2), None); // empty row
        assert_eq!(ell.slot(0, 3), Some((0, 5.0)));
        assert_eq!(ell.slot(2, 0), Some((4, 3.0)));
        assert_eq!(ell.slot(2, 3), None);
    }

    #[test]
    fn memory_counts_padding() {
        let ell = EllMatrix::from_csr(&skewed());
        assert_eq!(ell.memory_bytes(), 12 * 8);
    }

    #[test]
    fn empty_matrix_degenerates() {
        let coo = CooMatrix::new(3, 3);
        let ell = EllMatrix::from_csr(&coo.to_csr());
        assert_eq!(ell.width(), 0);
        assert_eq!(ell.padding_ratio(), 1.0);
        assert_eq!(ell.matvec(&[1.0, 1.0, 1.0]), vec![0.0; 3]);
    }
}

//! Coordinate (triplet) format — the mutable builder for sparse matrices.
//!
//! Datasets are assembled entry-by-entry (synthetic generators, LIBSVM
//! parsing) into a [`CooMatrix`] and then frozen into [`CsrMatrix`] /
//! [`CscMatrix`] for the solvers.

use crate::{CscMatrix, CsrMatrix, SparseError};

/// A sparse matrix in coordinate (row, col, value) triplet form.
///
/// Duplicate (row, col) entries are allowed while building and are **summed**
/// during conversion to CSR/CSC, matching the usual scipy/Eigen convention.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, f32)>,
}

impl CooMatrix {
    /// Create an empty matrix with the given shape.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(
            rows <= u32::MAX as usize && cols <= u32::MAX as usize,
            "CooMatrix indices are u32; shape {rows}x{cols} too large"
        );
        CooMatrix {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Create an empty matrix with capacity for `nnz` entries.
    pub fn with_capacity(rows: usize, cols: usize, nnz: usize) -> Self {
        let mut m = Self::new(rows, cols);
        m.entries.reserve(nnz);
        m
    }

    /// Number of rows (training examples, N in the paper).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (features, M in the paper).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries, *including* duplicates not yet summed.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Append one entry; `Err` if the indices are out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f32) -> Result<(), SparseError> {
        if row >= self.rows {
            return Err(SparseError::RowOutOfBounds {
                row,
                rows: self.rows,
            });
        }
        if col >= self.cols {
            return Err(SparseError::ColOutOfBounds {
                col,
                cols: self.cols,
            });
        }
        self.entries.push((row as u32, col as u32, value));
        Ok(())
    }

    /// Iterate over stored triplets as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        self.entries
            .iter()
            .map(|&(r, c, v)| (r as usize, c as usize, v))
    }

    /// Freeze into compressed sparse row form (used by the dual solvers).
    pub fn to_csr(&self) -> CsrMatrix {
        let (offsets, indices, values) =
            compress(self.rows, self.entries.iter().map(|&(r, c, v)| (r, c, v)));
        CsrMatrix::from_raw_unchecked(self.rows, self.cols, offsets, indices, values)
    }

    /// Freeze into compressed sparse column form (used by the primal solvers).
    pub fn to_csc(&self) -> CscMatrix {
        let (offsets, indices, values) =
            compress(self.cols, self.entries.iter().map(|&(r, c, v)| (c, r, v)));
        CscMatrix::from_raw_unchecked(self.rows, self.cols, offsets, indices, values)
    }

    /// Materialize as a dense row-major matrix (tests and tiny examples only).
    pub fn to_dense(&self) -> Vec<Vec<f32>> {
        let mut out = vec![vec![0.0f32; self.cols]; self.rows];
        for &(r, c, v) in &self.entries {
            out[r as usize][c as usize] += v;
        }
        out
    }
}

/// Compress triplets along a major axis: returns (offsets, minor indices,
/// values) with duplicates summed and minor indices sorted within each major
/// slot. Entries whose summed value is exactly 0.0 are kept (structural
/// zeros are preserved so nnz stays deterministic for the cost models).
fn compress(
    major_dim: usize,
    entries: impl Iterator<Item = (u32, u32, f32)>,
) -> (Vec<usize>, Vec<u32>, Vec<f32>) {
    let mut buckets: Vec<Vec<(u32, f32)>> = vec![Vec::new(); major_dim];
    for (maj, min, v) in entries {
        buckets[maj as usize].push((min, v));
    }
    let mut offsets = Vec::with_capacity(major_dim + 1);
    offsets.push(0usize);
    let mut indices = Vec::new();
    let mut values = Vec::new();
    for bucket in buckets.iter_mut() {
        bucket.sort_unstable_by_key(|&(min, _)| min);
        let mut i = 0;
        while i < bucket.len() {
            let (min, mut v) = bucket[i];
            let mut j = i + 1;
            while j < bucket.len() && bucket[j].0 == min {
                v += bucket[j].1;
                j += 1;
            }
            indices.push(min);
            values.push(v);
            i = j;
        }
        offsets.push(indices.len());
    }
    (offsets, indices, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooMatrix {
        // 3x4:
        // [1 0 2 0]
        // [0 3 0 0]
        // [4 0 0 5]
        let mut m = CooMatrix::new(3, 4);
        m.push(0, 0, 1.0).unwrap();
        m.push(0, 2, 2.0).unwrap();
        m.push(1, 1, 3.0).unwrap();
        m.push(2, 0, 4.0).unwrap();
        m.push(2, 3, 5.0).unwrap();
        m
    }

    #[test]
    fn push_bounds_checked() {
        let mut m = CooMatrix::new(2, 2);
        assert!(matches!(
            m.push(2, 0, 1.0),
            Err(SparseError::RowOutOfBounds { row: 2, rows: 2 })
        ));
        assert!(matches!(
            m.push(0, 5, 1.0),
            Err(SparseError::ColOutOfBounds { col: 5, cols: 2 })
        ));
        assert!(m.push(1, 1, 1.0).is_ok());
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn to_csr_structure() {
        let csr = sample().to_csr();
        assert_eq!(csr.rows(), 3);
        assert_eq!(csr.cols(), 4);
        assert_eq!(csr.nnz(), 5);
        assert_eq!(csr.offsets(), &[0, 2, 3, 5]);
        assert_eq!(csr.indices(), &[0, 2, 1, 0, 3]);
        assert_eq!(csr.values(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn to_csc_structure() {
        let csc = sample().to_csc();
        assert_eq!(csc.offsets(), &[0, 2, 3, 4, 5]);
        assert_eq!(csc.indices(), &[0, 2, 1, 0, 2]);
        assert_eq!(csc.values(), &[1.0, 4.0, 3.0, 2.0, 5.0]);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut m = CooMatrix::new(2, 2);
        m.push(0, 0, 1.0).unwrap();
        m.push(0, 0, 2.5).unwrap();
        m.push(1, 1, -1.0).unwrap();
        let csr = m.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.values(), &[3.5, -1.0]);
        let csc = m.to_csc();
        assert_eq!(csc.values(), &[3.5, -1.0]);
    }

    #[test]
    fn dense_roundtrip() {
        let d = sample().to_dense();
        assert_eq!(d[0], vec![1.0, 0.0, 2.0, 0.0]);
        assert_eq!(d[1], vec![0.0, 3.0, 0.0, 0.0]);
        assert_eq!(d[2], vec![4.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn empty_rows_and_cols_ok() {
        let mut m = CooMatrix::new(4, 4);
        m.push(3, 3, 9.0).unwrap();
        let csr = m.to_csr();
        assert_eq!(csr.offsets(), &[0, 0, 0, 0, 1]);
        let csc = m.to_csc();
        assert_eq!(csc.offsets(), &[0, 0, 0, 0, 1]);
    }

    #[test]
    fn unsorted_input_sorted_on_compress() {
        let mut m = CooMatrix::new(1, 5);
        m.push(0, 4, 4.0).unwrap();
        m.push(0, 1, 1.0).unwrap();
        m.push(0, 3, 3.0).unwrap();
        let csr = m.to_csr();
        assert_eq!(csr.indices(), &[1, 3, 4]);
        assert_eq!(csr.values(), &[1.0, 3.0, 4.0]);
    }
}

//! LIBSVM text format I/O.
//!
//! The datasets the paper trains on (webspam, criteo) are distributed in
//! LIBSVM format: one example per line, `label idx:val idx:val ...` with
//! 1-based feature indices. This module reads such files into a labelled COO
//! matrix and writes them back, so users can run the solvers on the real
//! datasets when available.

use crate::{CooMatrix, SparseError};
use std::io::{BufRead, BufReader, Read, Write};

/// A labelled sparse dataset: the design matrix plus one label per row.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelledData {
    /// The design matrix A (rows = examples, cols = features).
    pub matrix: CooMatrix,
    /// Labels y, one per row.
    pub labels: Vec<f32>,
}

/// Parse a LIBSVM-format stream.
///
/// `num_features` optionally fixes the feature-space width; when `None` the
/// width is the largest feature index seen. Feature indices in the file are
/// 1-based, as in the LIBSVM convention; index 0 is rejected.
pub fn read_libsvm<R: Read>(
    reader: R,
    num_features: Option<usize>,
) -> Result<LabelledData, SparseError> {
    let reader = BufReader::new(reader);
    let mut labels = Vec::new();
    let mut triplets: Vec<(usize, usize, f32)> = Vec::new();
    let mut max_feature = 0usize;

    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| SparseError::Parse {
            line: lineno + 1,
            message: format!("I/O error: {e}"),
        })?;
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        let label_tok = parts.next().ok_or(SparseError::Parse {
            line: lineno + 1,
            message: "missing label".into(),
        })?;
        let label: f32 = label_tok.parse().map_err(|_| SparseError::Parse {
            line: lineno + 1,
            message: format!("bad label {label_tok:?}"),
        })?;
        let row = labels.len();
        labels.push(label);
        let mut prev_idx = 0usize;
        for tok in parts {
            let (idx_s, val_s) = tok.split_once(':').ok_or_else(|| SparseError::Parse {
                line: lineno + 1,
                message: format!("expected idx:val, got {tok:?}"),
            })?;
            let idx: usize = idx_s.parse().map_err(|_| SparseError::Parse {
                line: lineno + 1,
                message: format!("bad feature index {idx_s:?}"),
            })?;
            if idx == 0 {
                return Err(SparseError::Parse {
                    line: lineno + 1,
                    message: "feature indices are 1-based; got 0".into(),
                });
            }
            if idx <= prev_idx {
                return Err(SparseError::Parse {
                    line: lineno + 1,
                    message: format!("feature indices must be strictly increasing; got {idx} after {prev_idx}"),
                });
            }
            prev_idx = idx;
            let val: f32 = val_s.parse().map_err(|_| SparseError::Parse {
                line: lineno + 1,
                message: format!("bad feature value {val_s:?}"),
            })?;
            max_feature = max_feature.max(idx);
            triplets.push((row, idx - 1, val));
        }
    }

    let cols = match num_features {
        Some(m) => {
            if max_feature > m {
                return Err(SparseError::Parse {
                    line: 0,
                    message: format!(
                        "file contains feature index {max_feature} > declared width {m}"
                    ),
                });
            }
            m
        }
        None => max_feature,
    };
    let mut matrix = CooMatrix::with_capacity(labels.len(), cols, triplets.len());
    for (r, c, v) in triplets {
        matrix.push(r, c, v)?;
    }
    Ok(LabelledData { matrix, labels })
}

/// Write a labelled dataset in LIBSVM format (1-based feature indices).
pub fn write_libsvm<W: Write>(data: &LabelledData, mut writer: W) -> std::io::Result<()> {
    // Group triplets per row; CooMatrix preserves insertion order, so sort
    // explicitly for a canonical output.
    let rows = data.matrix.rows();
    let mut per_row: Vec<Vec<(usize, f32)>> = vec![Vec::new(); rows];
    for (r, c, v) in data.matrix.iter() {
        per_row[r].push((c, v));
    }
    for (r, entries) in per_row.iter_mut().enumerate() {
        // Stable sort: duplicate (row, col) entries keep insertion order, so
        // their sum is bitwise identical to the COO compression's.
        entries.sort_by_key(|&(c, _)| c);
        write!(writer, "{}", data.labels[r])?;
        // Duplicate (row, col) entries are summed, matching the COO → CSR
        // compression semantics.
        let mut i = 0;
        while i < entries.len() {
            let (c, mut v) = entries[i];
            let mut j = i + 1;
            while j < entries.len() && entries[j].0 == c {
                v += entries[j].1;
                j += 1;
            }
            write!(writer, " {}:{}", c + 1, v)?;
            i = j;
        }
        writeln!(writer)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
+1 1:0.5 3:1.25
-1 2:2.0
+1 1:1.0 2:1.0 3:1.0
";

    #[test]
    fn parse_basic() {
        let data = read_libsvm(SAMPLE.as_bytes(), None).unwrap();
        assert_eq!(data.labels, vec![1.0, -1.0, 1.0]);
        assert_eq!(data.matrix.rows(), 3);
        assert_eq!(data.matrix.cols(), 3);
        let dense = data.matrix.to_dense();
        assert_eq!(dense[0], vec![0.5, 0.0, 1.25]);
        assert_eq!(dense[1], vec![0.0, 2.0, 0.0]);
    }

    #[test]
    fn fixed_width() {
        let data = read_libsvm(SAMPLE.as_bytes(), Some(10)).unwrap();
        assert_eq!(data.matrix.cols(), 10);
        assert!(read_libsvm(SAMPLE.as_bytes(), Some(2)).is_err());
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let s = "\n# full comment line\n+1 1:2.0 # trailing comment\n\n";
        let data = read_libsvm(s.as_bytes(), None).unwrap();
        assert_eq!(data.labels.len(), 1);
        assert_eq!(data.matrix.nnz(), 1);
    }

    #[test]
    fn rejects_zero_index() {
        let s = "+1 0:1.0";
        let err = read_libsvm(s.as_bytes(), None).unwrap_err();
        assert!(err.to_string().contains("1-based"));
    }

    #[test]
    fn rejects_non_increasing_indices() {
        let s = "+1 2:1.0 2:2.0";
        assert!(read_libsvm(s.as_bytes(), None).is_err());
        let s = "+1 3:1.0 2:2.0";
        assert!(read_libsvm(s.as_bytes(), None).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_libsvm("abc 1:1".as_bytes(), None).is_err());
        assert!(read_libsvm("+1 1".as_bytes(), None).is_err());
        assert!(read_libsvm("+1 x:1".as_bytes(), None).is_err());
        assert!(read_libsvm("+1 1:y".as_bytes(), None).is_err());
    }

    #[test]
    fn roundtrip() {
        let data = read_libsvm(SAMPLE.as_bytes(), None).unwrap();
        let mut buf = Vec::new();
        write_libsvm(&data, &mut buf).unwrap();
        let back = read_libsvm(buf.as_slice(), Some(3)).unwrap();
        assert_eq!(back.labels, data.labels);
        assert_eq!(back.matrix.to_dense(), data.matrix.to_dense());
    }

    #[test]
    fn write_merges_duplicate_entries() {
        let mut m = CooMatrix::new(1, 3);
        m.push(0, 1, 1.5).unwrap();
        m.push(0, 1, 2.5).unwrap();
        let data = LabelledData {
            matrix: m,
            labels: vec![1.0],
        };
        let mut buf = Vec::new();
        write_libsvm(&data, &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "1 2:4\n");
    }

    #[test]
    fn label_only_rows_allowed() {
        let s = "+1\n-1 1:1.0\n";
        let data = read_libsvm(s.as_bytes(), None).unwrap();
        assert_eq!(data.labels.len(), 2);
        assert_eq!(data.matrix.nnz(), 1);
    }
}

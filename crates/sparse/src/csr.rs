//! Compressed sparse row format.
//!
//! The dual solvers walk training examples, i.e. rows ā_n of the data matrix,
//! so the paper stores the matrix in CSR when solving the dual formulation.

use crate::{CscMatrix, SparseError, SparseVecView};

/// An immutable sparse matrix in compressed sparse row format.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// `offsets[r]..offsets[r+1]` is the slice of row r; len = rows + 1.
    offsets: Vec<usize>,
    /// Column indices, strictly increasing within each row.
    indices: Vec<u32>,
    /// Values aligned with `indices`.
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Build from raw arrays after validating the structure.
    pub fn from_raw(
        rows: usize,
        cols: usize,
        offsets: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<Self, SparseError> {
        validate_compressed(rows, cols, &offsets, &indices, &values)?;
        Ok(Self::from_raw_unchecked(rows, cols, offsets, indices, values))
    }

    /// Build from raw arrays that are already known to be valid (e.g. the
    /// output of [`crate::CooMatrix::to_csr`]).
    pub(crate) fn from_raw_unchecked(
        rows: usize,
        cols: usize,
        offsets: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        debug_assert!(validate_compressed(rows, cols, &offsets, &indices, &values).is_ok());
        CsrMatrix {
            rows,
            cols,
            offsets,
            indices,
            values,
        }
    }

    /// Number of rows (training examples, N).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (features, M).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row offset array (length `rows + 1`).
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Column index array.
    #[inline]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Value array.
    #[inline]
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Borrow row `n` (the dual coordinate ā_n).
    ///
    /// # Panics
    /// Panics if `n >= self.rows()`.
    #[inline]
    pub fn row(&self, n: usize) -> SparseVecView<'_> {
        let lo = self.offsets[n];
        let hi = self.offsets[n + 1];
        SparseVecView {
            indices: &self.indices[lo..hi],
            values: &self.values[lo..hi],
        }
    }

    /// Iterate over all rows in order.
    pub fn iter_rows(&self) -> impl Iterator<Item = SparseVecView<'_>> + '_ {
        (0..self.rows).map(move |n| self.row(n))
    }

    /// ‖ā_n‖² for every row — the denominators of the dual update rule (4).
    pub fn row_squared_norms(&self) -> Vec<f64> {
        self.iter_rows().map(|r| r.squared_norm()).collect()
    }

    /// Dense product `out = A x` (x has length `cols`, out length `rows`).
    pub fn matvec(&self, x: &[f32]) -> Result<Vec<f32>, SparseError> {
        if x.len() != self.cols {
            return Err(SparseError::DimensionMismatch {
                expected: self.cols,
                got: x.len(),
            });
        }
        let mut out = vec![0.0f32; self.rows];
        self.matvec_into(x, &mut out)?;
        Ok(out)
    }

    /// [`Self::matvec`] into a caller-owned buffer of length `rows` —
    /// bit-identical output, no allocation. `out` is overwritten.
    pub fn matvec_into(&self, x: &[f32], out: &mut [f32]) -> Result<(), SparseError> {
        if x.len() != self.cols {
            return Err(SparseError::DimensionMismatch {
                expected: self.cols,
                got: x.len(),
            });
        }
        if out.len() != self.rows {
            return Err(SparseError::DimensionMismatch {
                expected: self.rows,
                got: out.len(),
            });
        }
        for (row, slot) in self.iter_rows().zip(out.iter_mut()) {
            *slot = row.dot_dense(x) as f32;
        }
        Ok(())
    }

    /// Dense product `out = Aᵀ y` (y has length `rows`, out length `cols`).
    ///
    /// This is the dual shared vector w̄ = Aᵀα.
    pub fn matvec_t(&self, y: &[f32]) -> Result<Vec<f32>, SparseError> {
        let mut out = vec![0.0f32; self.cols];
        self.matvec_t_into(y, &mut out)?;
        Ok(out)
    }

    /// [`Self::matvec_t`] into a caller-owned buffer of length `cols` —
    /// bit-identical output, no allocation. `out` is overwritten.
    pub fn matvec_t_into(&self, y: &[f32], out: &mut [f32]) -> Result<(), SparseError> {
        if y.len() != self.rows {
            return Err(SparseError::DimensionMismatch {
                expected: self.rows,
                got: y.len(),
            });
        }
        if out.len() != self.cols {
            return Err(SparseError::DimensionMismatch {
                expected: self.cols,
                got: out.len(),
            });
        }
        out.fill(0.0);
        for (n, row) in self.iter_rows().enumerate() {
            row.axpy_into(y[n], out);
        }
        Ok(())
    }

    /// Extract the submatrix formed by the given rows, in the given order.
    /// Column indices are preserved (the feature space is global) — this is
    /// the "partition by training example" operation of the distributed dual
    /// solver.
    ///
    /// # Panics
    /// Panics if any row index is out of bounds.
    pub fn select_rows(&self, rows: &[usize]) -> CsrMatrix {
        let mut offsets = Vec::with_capacity(rows.len() + 1);
        offsets.push(0usize);
        let nnz: usize = rows
            .iter()
            .map(|&r| self.offsets[r + 1] - self.offsets[r])
            .sum();
        let mut indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        for &r in rows {
            let lo = self.offsets[r];
            let hi = self.offsets[r + 1];
            indices.extend_from_slice(&self.indices[lo..hi]);
            values.extend_from_slice(&self.values[lo..hi]);
            offsets.push(indices.len());
        }
        CsrMatrix::from_raw_unchecked(rows.len(), self.cols, offsets, indices, values)
    }

    /// Convert to compressed sparse column format.
    pub fn to_csc(&self) -> CscMatrix {
        // Counting sort by column: O(nnz + cols).
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            counts[c as usize + 1] += 1;
        }
        for c in 0..self.cols {
            counts[c + 1] += counts[c];
        }
        let offsets = counts.clone();
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0.0f32; self.nnz()];
        let mut cursor = counts;
        for r in 0..self.rows {
            let lo = self.offsets[r];
            let hi = self.offsets[r + 1];
            for k in lo..hi {
                let c = self.indices[k] as usize;
                let dst = cursor[c];
                indices[dst] = r as u32;
                values[dst] = self.values[k];
                cursor[c] += 1;
            }
        }
        CscMatrix::from_raw_unchecked(self.rows, self.cols, offsets, indices, values)
    }

    /// Bytes consumed by the index and value arrays with 32-bit values and
    /// 32-bit minor indices plus the offset array — the quantity the paper
    /// compares against GPU memory capacity (webspam ≈ 7.3 GB, criteo ≈ 40 GB).
    pub fn memory_bytes(&self) -> usize {
        self.values.len() * 4 + self.indices.len() * 4 + self.offsets.len() * 8
    }
}

/// Shared structural validation for CSR/CSC raw arrays. `major_dim` rows for
/// CSR, columns for CSC; `minor_dim` the other.
pub(crate) fn validate_compressed(
    major_dim: usize,
    minor_dim: usize,
    offsets: &[usize],
    indices: &[u32],
    values: &[f32],
) -> Result<(), SparseError> {
    if offsets.len() != major_dim + 1 {
        return Err(SparseError::InvalidStructure(format!(
            "offsets length {} != major_dim + 1 = {}",
            offsets.len(),
            major_dim + 1
        )));
    }
    if offsets[0] != 0 {
        return Err(SparseError::InvalidStructure(
            "offsets must start at 0".into(),
        ));
    }
    if *offsets.last().unwrap() != indices.len() {
        return Err(SparseError::InvalidStructure(format!(
            "final offset {} != nnz {}",
            offsets.last().unwrap(),
            indices.len()
        )));
    }
    if indices.len() != values.len() {
        return Err(SparseError::InvalidStructure(format!(
            "indices length {} != values length {}",
            indices.len(),
            values.len()
        )));
    }
    for w in offsets.windows(2) {
        if w[1] < w[0] {
            return Err(SparseError::InvalidStructure(
                "offsets must be non-decreasing".into(),
            ));
        }
    }
    for (slot, w) in offsets.windows(2).enumerate() {
        let slice = &indices[w[0]..w[1]];
        for pair in slice.windows(2) {
            if pair[1] <= pair[0] {
                return Err(SparseError::InvalidStructure(format!(
                    "minor indices not strictly increasing in major slot {slot}"
                )));
            }
        }
        if let Some(&last) = slice.last() {
            if last as usize >= minor_dim {
                return Err(SparseError::InvalidStructure(format!(
                    "minor index {last} out of bounds ({minor_dim}) in major slot {slot}"
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn sample() -> CsrMatrix {
        // [1 0 2 0]
        // [0 3 0 0]
        // [4 0 0 5]
        let mut m = CooMatrix::new(3, 4);
        for &(r, c, v) in &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0), (2, 0, 4.0), (2, 3, 5.0)] {
            m.push(r, c, v).unwrap();
        }
        m.to_csr()
    }

    #[test]
    fn row_views() {
        let m = sample();
        let r0 = m.row(0);
        assert_eq!(r0.indices, &[0, 2]);
        assert_eq!(r0.values, &[1.0, 2.0]);
        assert_eq!(m.row(1).nnz(), 1);
        assert_eq!(m.iter_rows().count(), 3);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = sample();
        let x = [1.0f32, 2.0, 3.0, 4.0];
        let out = m.matvec(&x).unwrap();
        assert_eq!(out, vec![7.0, 6.0, 24.0]);
    }

    #[test]
    fn matvec_t_matches_dense() {
        let m = sample();
        let y = [1.0f32, 2.0, 3.0];
        let out = m.matvec_t(&y).unwrap();
        // A^T y: col0: 1*1 + 4*3 = 13; col1: 3*2 = 6; col2: 2*1 = 2; col3: 5*3 = 15
        assert_eq!(out, vec![13.0, 6.0, 2.0, 15.0]);
    }

    #[test]
    fn matvec_dimension_checked() {
        let m = sample();
        assert!(m.matvec(&[1.0; 3]).is_err());
        assert!(m.matvec_t(&[1.0; 4]).is_err());
    }

    #[test]
    fn row_norms() {
        let m = sample();
        let norms = m.row_squared_norms();
        assert_eq!(norms, vec![5.0, 9.0, 41.0]);
    }

    #[test]
    fn select_rows_reorders() {
        let m = sample();
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.cols(), 4);
        assert_eq!(s.row(0).indices, &[0, 3]);
        assert_eq!(s.row(1).indices, &[0, 2]);
    }

    #[test]
    fn csr_to_csc_roundtrip() {
        let m = sample();
        let csc = m.to_csc();
        assert_eq!(csc.nnz(), m.nnz());
        let x = [1.0f32, -1.0, 0.5, 2.0];
        assert_eq!(m.matvec(&x).unwrap(), csc.matvec(&x).unwrap());
    }

    #[test]
    fn from_raw_validates() {
        // offsets wrong length
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        // final offset != nnz
        assert!(CsrMatrix::from_raw(1, 2, vec![0, 2], vec![0], vec![1.0]).is_err());
        // non-increasing minor indices
        assert!(
            CsrMatrix::from_raw(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]).is_err()
        );
        // out-of-bounds index
        assert!(CsrMatrix::from_raw(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
        // valid
        assert!(CsrMatrix::from_raw(1, 2, vec![0, 1], vec![1], vec![1.0]).is_ok());
    }

    #[test]
    fn memory_bytes_counts_arrays() {
        let m = sample();
        assert_eq!(m.memory_bytes(), 5 * 4 + 5 * 4 + 4 * 8);
    }
}

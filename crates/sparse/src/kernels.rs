//! SIMD-friendly CPU kernels for the hot sparse inner loops.
//!
//! Every CPU solver spends its time in two operations per coordinate: a
//! sparse·dense inner product and a sparse axpy write-back. The scalar
//! reference forms on [`crate::SparseVecView`] accumulate one product at a
//! time, which serializes the floating-point adds on the accumulator's
//! latency chain. The kernels here split the accumulation across
//! [`LANES`] independent partial sums so the compiler can keep several
//! FMAs in flight (and, with gathers unavailable for sparse indices,
//! still saturate the load ports) — the same restructuring SySCD applies
//! to its bucket kernels.
//!
//! # Accumulation contract
//!
//! All kernels accumulate in `f64`. Each product
//! `dense[idx[k]] as f64 * val[k] as f64` is **exact** (a 24-bit × 24-bit
//! significand product fits in f64's 53 bits), so scalar and unrolled
//! forms differ only in summation order:
//!
//! * the scalar reference ([`crate::SparseVecView::dot_dense`]) adds
//!   products left to right;
//! * the unrolled kernels assign product `k` to lane `k % LANES`, add a
//!   scalar tail for the last `nnz % LANES` products, and reduce with the
//!   fixed tree `((l0 + l1) + (l2 + l3)) + tail`.
//!
//! The divergence between the two orders is bounded by standard
//! summation-error analysis: `|unrolled − scalar| ≤ 2(n−1)·ε·Σ|vₖ·dₖ|`
//! with `ε = f64::EPSILON` (a property test in `tests/proptests.rs`
//! enforces it). Crucially the unrolled order is itself **deterministic**:
//! any two call sites that stream the same products through the same
//! kernel get bit-identical results, which is what the solver
//! bit-identity tests (`syscd` vs sequential) rely on.
//!
//! The axpy kernel performs the same writes as the scalar loop — the
//! target indices of one sparse vector are distinct, so unrolling cannot
//! reorder dependent adds and the result is bit-identical to the
//! reference, not merely close.

/// Number of independent accumulator lanes in the unrolled kernels.
pub const LANES: usize = 4;

/// Reduce the lane partials with the fixed tree documented in the module
/// header. Exposed so alternative layouts (ELL) can share it.
#[inline(always)]
pub fn reduce_lanes(lanes: [f64; LANES], tail: f64) -> f64 {
    ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) + tail
}

/// Unrolled `Σ load(idx[k]) · val[k]`, generic over how the dense operand
/// is read so the atomic-buffer engines (A-SCD) share one implementation
/// with the plain-slice engines.
#[inline]
pub fn dot_gather<F: Fn(usize) -> f32>(indices: &[u32], values: &[f32], load: F) -> f64 {
    let n = indices.len();
    let head = n - n % LANES;
    let mut lanes = [0.0f64; LANES];
    let mut k = 0;
    while k < head {
        lanes[0] += load(indices[k] as usize) as f64 * values[k] as f64;
        lanes[1] += load(indices[k + 1] as usize) as f64 * values[k + 1] as f64;
        lanes[2] += load(indices[k + 2] as usize) as f64 * values[k + 2] as f64;
        lanes[3] += load(indices[k + 3] as usize) as f64 * values[k + 3] as f64;
        k += LANES;
    }
    let mut tail = 0.0f64;
    for k in head..n {
        tail += load(indices[k] as usize) as f64 * values[k] as f64;
    }
    reduce_lanes(lanes, tail)
}

/// Unrolled sparse·dense inner product `Σ dense[idx[k]] · val[k]`.
#[inline]
pub fn dot_dense(indices: &[u32], values: &[f32], dense: &[f32]) -> f64 {
    dot_gather(indices, values, |i| dense[i])
}

/// Unrolled residual inner product `Σ (y[idx[k]] − load(idx[k])) · val[k]`
/// — the primal form's `⟨y − w, a_m⟩`, generic over the shared-vector
/// read like [`dot_gather`].
#[inline]
pub fn dot_residual_gather<F: Fn(usize) -> f32>(
    indices: &[u32],
    values: &[f32],
    y: &[f32],
    load: F,
) -> f64 {
    let n = indices.len();
    let head = n - n % LANES;
    let mut lanes = [0.0f64; LANES];
    let mut k = 0;
    while k < head {
        let (i0, i1) = (indices[k] as usize, indices[k + 1] as usize);
        let (i2, i3) = (indices[k + 2] as usize, indices[k + 3] as usize);
        lanes[0] += (y[i0] as f64 - load(i0) as f64) * values[k] as f64;
        lanes[1] += (y[i1] as f64 - load(i1) as f64) * values[k + 1] as f64;
        lanes[2] += (y[i2] as f64 - load(i2) as f64) * values[k + 2] as f64;
        lanes[3] += (y[i3] as f64 - load(i3) as f64) * values[k + 3] as f64;
        k += LANES;
    }
    let mut tail = 0.0f64;
    for k in head..n {
        let i = indices[k] as usize;
        tail += (y[i] as f64 - load(i) as f64) * values[k] as f64;
    }
    reduce_lanes(lanes, tail)
}

/// Unrolled residual inner product over a plain dense slice.
#[inline]
pub fn dot_residual(indices: &[u32], values: &[f32], y: &[f32], dense: &[f32]) -> f64 {
    dot_residual_gather(indices, values, y, |i| dense[i])
}

/// Unrolled `dense[idx[k]] += scale · val[k]`. Bit-identical to the
/// scalar loop for any sparse vector with distinct indices (each target
/// element receives exactly one add, so no reassociation occurs).
#[inline]
pub fn axpy(indices: &[u32], values: &[f32], scale: f32, dense: &mut [f32]) {
    let n = indices.len();
    let head = n - n % LANES;
    let mut k = 0;
    while k < head {
        dense[indices[k] as usize] += scale * values[k];
        dense[indices[k + 1] as usize] += scale * values[k + 1];
        dense[indices[k + 2] as usize] += scale * values[k + 2];
        dense[indices[k + 3] as usize] += scale * values[k + 3];
        k += LANES;
    }
    for k in head..n {
        dense[indices[k] as usize] += scale * values[k];
    }
}

/// Merge per-worker replicas of a dense shared vector back into one:
/// `out[i] = base[i] + scale · Σ_w (replicas[w][i] − base[i])`, all in
/// `f32` with the per-element delta sum folded in slice order. With a
/// fixed worker order the result is deterministic regardless of how many
/// host threads computed the replicas — the SySCD merge step.
///
/// `scale` undoes the CoCoA+ safe-subproblem scaling: workers that grow
/// their replica by `σ′ ×` the local update pass `scale = 1/σ′` so the
/// merged vector carries the unscaled sum of local contributions. Pass
/// `1.0` for a plain additive merge.
///
/// All slices must have equal length (`out` is typically a chunk of the
/// shared vector, with `base`/`replicas` sliced to the same range).
pub fn merge_replicas(base: &[f32], replicas: &[&[f32]], scale: f32, out: &mut [f32]) {
    debug_assert!(replicas.iter().all(|r| r.len() == base.len()));
    debug_assert_eq!(out.len(), base.len());
    for (i, out_i) in out.iter_mut().enumerate() {
        let mut delta = 0.0f32;
        for r in replicas {
            delta += r[i] - base[i];
        }
        *out_i = base[i] + scale * delta;
    }
}

/// [`merge_replicas`] with the shared vector serving as both base and
/// output: each element is read before it is written, so the fold sees
/// exactly the pre-merge value — bit-identical to
/// `merge_replicas(shared_before, replicas, scale, shared)` without a
/// separate base snapshot. Sound whenever the replicas were seeded from
/// (and diverge from) the current contents of `shared`, which is the
/// SySCD window invariant.
pub fn merge_replicas_in_place(replicas: &[&[f32]], scale: f32, shared: &mut [f32]) {
    debug_assert!(replicas.iter().all(|r| r.len() == shared.len()));
    for (i, s) in shared.iter_mut().enumerate() {
        let base = *s;
        let mut delta = 0.0f32;
        for r in replicas {
            delta += r[i] - base;
        }
        *s = base + scale * delta;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(n: usize, seed: u64) -> (Vec<u32>, Vec<f32>, Vec<f32>) {
        // Deterministic pseudo-random sparse vector + dense companion.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut indices: Vec<u32> = (0..n as u32).filter(|_| next() % 3 != 0).collect();
        if indices.is_empty() {
            indices.push(0);
        }
        let values: Vec<f32> = indices
            .iter()
            .map(|_| (next() % 2000) as f32 / 997.0 - 1.0)
            .collect();
        let dense: Vec<f32> = (0..n).map(|_| (next() % 2000) as f32 / 991.0 - 1.0).collect();
        (indices, values, dense)
    }

    fn scalar_dot(indices: &[u32], values: &[f32], dense: &[f32]) -> f64 {
        indices
            .iter()
            .zip(values)
            .map(|(&i, &v)| dense[i as usize] as f64 * v as f64)
            .sum()
    }

    #[test]
    fn dot_matches_scalar_within_reassociation_bound() {
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 13, 64, 257] {
            let (idx, val, dense) = view(n.max(1), 0xC0FFEE + n as u64);
            let fast = dot_dense(&idx, &val, &dense);
            let slow = scalar_dot(&idx, &val, &dense);
            let abs_sum: f64 = idx
                .iter()
                .zip(&val)
                .map(|(&i, &v)| (dense[i as usize] as f64 * v as f64).abs())
                .sum();
            let bound = 2.0 * idx.len() as f64 * f64::EPSILON * abs_sum + 1e-300;
            assert!((fast - slow).abs() <= bound, "n={n}: {fast} vs {slow}");
        }
    }

    #[test]
    fn residual_dot_matches_definition() {
        let (idx, val, dense) = view(37, 7);
        let y: Vec<f32> = dense.iter().map(|v| v * 0.5 + 0.25).collect();
        let fast = dot_residual(&idx, &val, &y, &dense);
        let slow: f64 = idx
            .iter()
            .zip(&val)
            .map(|(&i, &v)| (y[i as usize] as f64 - dense[i as usize] as f64) * v as f64)
            .sum();
        assert!((fast - slow).abs() < 1e-12 * slow.abs().max(1.0));
    }

    #[test]
    fn gather_form_is_bit_identical_to_slice_form() {
        let (idx, val, dense) = view(101, 42);
        let a = dot_dense(&idx, &val, &dense);
        let b = dot_gather(&idx, &val, |i| dense[i]);
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn axpy_is_bit_identical_to_scalar_loop() {
        let (idx, val, dense) = view(73, 9);
        let mut fast = dense.clone();
        let mut slow = dense;
        axpy(&idx, &val, -0.3721, &mut fast);
        for (&i, &v) in idx.iter().zip(&val) {
            slow[i as usize] += -0.3721 * v;
        }
        assert_eq!(
            fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            slow.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn merge_folds_worker_deltas_in_order() {
        let base = vec![1.0f32, -2.0, 0.5];
        let r0 = vec![1.5f32, -2.0, 0.5]; // worker 0 added +0.5 to slot 0
        let r1 = vec![1.0f32, -1.0, 0.25]; // worker 1 touched slots 1, 2
        let mut out = vec![0.0f32; 3];
        merge_replicas(&base, &[&r0, &r1], 1.0, &mut out);
        assert_eq!(out, vec![1.5, -1.0, 0.25]);
    }

    #[test]
    fn merge_scale_undoes_replica_scaling() {
        // Workers stored base + 2× their contribution; scale = 1/2
        // recovers the plain sum of contributions.
        let base = vec![1.0f32, 0.0];
        let r0 = vec![3.0f32, 0.0]; // contribution +1 to slot 0, stored ×2
        let r1 = vec![1.0f32, 4.0]; // contribution +2 to slot 1, stored ×2
        let mut out = vec![0.0f32; 2];
        merge_replicas(&base, &[&r0, &r1], 0.5, &mut out);
        assert_eq!(out, vec![2.0, 2.0]);
    }

    #[test]
    fn in_place_merge_bit_identical_to_out_of_place() {
        let base: Vec<f32> = (0..37).map(|i| (i as f32 * 0.71).sin()).collect();
        let r0: Vec<f32> = base.iter().map(|v| v + 0.125).collect();
        let r1: Vec<f32> = base.iter().map(|v| v * 1.5).collect();
        let mut out = vec![0.0f32; base.len()];
        merge_replicas(&base, &[&r0, &r1], 0.5, &mut out);
        let mut shared = base.clone();
        merge_replicas_in_place(&[&r0, &r1], 0.5, &mut shared);
        assert_eq!(
            out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            shared.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn merge_with_no_replicas_copies_base() {
        let base = vec![3.0f32, 4.0];
        let mut out = vec![0.0f32; 2];
        merge_replicas(&base, &[], 1.0, &mut out);
        assert_eq!(out, base);
    }
}

//! Permutations and deterministic shuffling.
//!
//! Every epoch of SCD visits the coordinates in a fresh random permutation
//! (`P_epoch` in Algorithms 1 and 2). The solvers need those permutations to
//! be reproducible across runs and across the real-thread and simulated
//! asynchronous engines, so shuffling here is driven by an explicit-seed
//! SplitMix64 generator rather than a global RNG.

/// A minimal, allocation-free SplitMix64 PRNG.
///
/// Used only for index shuffling; the dataset generators in `scd-datasets`
/// use the full `rand` crate.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Any seed is fine, including 0.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift reduction.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "next_below: bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A permutation of `0..len`.
///
/// ```
/// use scd_sparse::perm::Permutation;
/// let p = Permutation::random(10, 42);
/// let inv = p.inverse();
/// for i in 0..10 {
///     assert_eq!(inv.apply(p.apply(i)), i);
/// }
/// assert_eq!(p, Permutation::random(10, 42)); // seeded, reproducible
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    map: Vec<u32>,
}

impl Permutation {
    /// The identity permutation of the given length.
    pub fn identity(len: usize) -> Self {
        assert!(len <= u32::MAX as usize, "permutation too large for u32");
        Permutation {
            map: (0..len as u32).collect(),
        }
    }

    /// A uniformly random permutation of `0..len` from the given seed
    /// (Fisher–Yates over SplitMix64).
    pub fn random(len: usize, seed: u64) -> Self {
        let mut p = Self::identity(len);
        let mut rng = SplitMix64::new(seed);
        let m = &mut p.map;
        for i in (1..m.len()).rev() {
            let j = rng.next_below(i + 1);
            m.swap(i, j);
        }
        p
    }

    /// Re-shuffle in place to the permutation [`Self::random`]`(len, seed)`
    /// would produce — bit-identical draw order, but reusing this
    /// permutation's buffer. Once the buffer's capacity covers `len`
    /// (every epoch after the first, for a solver), no allocation occurs.
    pub fn refill_random(&mut self, len: usize, seed: u64) {
        assert!(len <= u32::MAX as usize, "permutation too large for u32");
        self.map.clear();
        self.map.extend(0..len as u32);
        let mut rng = SplitMix64::new(seed);
        let m = &mut self.map;
        for i in (1..m.len()).rev() {
            let j = rng.next_below(i + 1);
            m.swap(i, j);
        }
    }

    /// Wrap an explicit mapping; `Err(())` if it is not a permutation.
    pub fn from_vec(map: Vec<u32>) -> Result<Self, &'static str> {
        let mut seen = vec![false; map.len()];
        for &v in &map {
            let v = v as usize;
            if v >= map.len() {
                return Err("index out of range");
            }
            if seen[v] {
                return Err("duplicate index");
            }
            seen[v] = true;
        }
        Ok(Permutation { map })
    }

    /// Length of the permuted domain.
    #[inline]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the domain is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Image of position `i` — `P_epoch(j)` in the paper's notation.
    #[inline]
    pub fn apply(&self, i: usize) -> usize {
        self.map[i] as usize
    }

    /// Borrow the raw mapping.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.map
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0u32; self.map.len()];
        for (i, &v) in self.map.iter().enumerate() {
            inv[v as usize] = i as u32;
        }
        Permutation { map: inv }
    }

    /// Reorder a slice: `out[i] = data[self.apply(i)]`.
    pub fn gather<T: Copy>(&self, data: &[T]) -> Vec<T> {
        assert_eq!(data.len(), self.map.len(), "gather: length mismatch");
        self.map.iter().map(|&v| data[v as usize]).collect()
    }

    /// Iterate over images in order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.map.iter().map(|&v| v as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn next_below_in_range() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(rng.next_below(13) < 13);
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        // Mean of U[0,1) over 10k draws should be near 0.5.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn random_permutation_is_a_permutation() {
        let p = Permutation::random(1000, 3);
        let mut seen = vec![false; 1000];
        for i in 0..1000 {
            let v = p.apply(i);
            assert!(!seen[v]);
            seen[v] = true;
        }
    }

    #[test]
    fn refill_random_is_bit_identical_to_random() {
        let mut p = Permutation::identity(0);
        for (len, seed) in [(1000usize, 3u64), (257, 11), (1, 0), (0, 9), (64, 7)] {
            p.refill_random(len, seed);
            assert_eq!(p, Permutation::random(len, seed), "len {len} seed {seed}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Permutation::random(100, 1);
        let b = Permutation::random(100, 2);
        assert_ne!(a, b);
        let a2 = Permutation::random(100, 1);
        assert_eq!(a, a2);
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = Permutation::random(257, 11);
        let inv = p.inverse();
        for i in 0..257 {
            assert_eq!(inv.apply(p.apply(i)), i);
            assert_eq!(p.apply(inv.apply(i)), i);
        }
    }

    #[test]
    fn gather_reorders() {
        let p = Permutation::from_vec(vec![2, 0, 1]).unwrap();
        assert_eq!(p.gather(&[10, 20, 30]), vec![30, 10, 20]);
    }

    #[test]
    fn from_vec_rejects_bad_maps() {
        assert!(Permutation::from_vec(vec![0, 0]).is_err());
        assert!(Permutation::from_vec(vec![0, 5]).is_err());
        assert!(Permutation::from_vec(vec![1, 0]).is_ok());
    }

    #[test]
    fn empty_and_singleton() {
        let p = Permutation::random(0, 1);
        assert!(p.is_empty());
        let p = Permutation::random(1, 1);
        assert_eq!(p.apply(0), 0);
    }

    #[test]
    fn shuffle_is_roughly_uniform() {
        // Position of element 0 across many seeds should hit all slots.
        let mut counts = [0usize; 5];
        for seed in 0..500 {
            let p = Permutation::random(5, seed);
            counts[p.inverse().apply(0)] += 1;
        }
        for &c in &counts {
            assert!(c > 50, "position badly under-represented: {counts:?}");
        }
    }
}

//! Structural analysis of sparse matrices.
//!
//! The behaviours this repository studies all hinge on structure: the
//! Zipf-skew of webspam's feature popularity drives cross-worker coupling
//! (Fig. 3), row-length uniformity decides CSR-vs-ELLPACK (the layout
//! ablation), and per-coordinate nonzero counts set the GPU block sizes.
//! [`StructureProfile`] computes the numbers those discussions rely on.

use crate::CsrMatrix;

/// Distribution summary of per-row or per-column nonzero counts.
#[derive(Debug, Clone, PartialEq)]
pub struct NnzDistribution {
    /// Minimum count.
    pub min: usize,
    /// Maximum count.
    pub max: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (lower median for even lengths).
    pub median: usize,
    /// 90th percentile.
    pub p90: usize,
    /// Gini coefficient of the counts (0 = perfectly uniform, → 1 =
    /// concentrated on few rows/columns).
    pub gini: f64,
    /// Share of all nonzeros carried by the top 10% heaviest rows/columns.
    pub top_decile_share: f64,
}

impl NnzDistribution {
    /// Summarize a list of nonzero counts.
    ///
    /// # Panics
    /// Panics on an empty list.
    pub fn from_counts(mut counts: Vec<usize>) -> Self {
        assert!(!counts.is_empty(), "no counts to summarize");
        counts.sort_unstable();
        let n = counts.len();
        let total: usize = counts.iter().sum();
        let mean = total as f64 / n as f64;
        let median = counts[(n - 1) / 2];
        let p90 = counts[((n - 1) * 9) / 10];
        // Gini over sorted counts: (2·Σ i·x_i)/(n·Σx) − (n+1)/n.
        let gini = if total == 0 {
            0.0
        } else {
            let weighted: f64 = counts
                .iter()
                .enumerate()
                .map(|(i, &x)| (i + 1) as f64 * x as f64)
                .sum();
            (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
        };
        let top_n = (n / 10).max(1);
        let top: usize = counts[n - top_n..].iter().sum();
        let top_decile_share = if total == 0 {
            0.0
        } else {
            top as f64 / total as f64
        };
        NnzDistribution {
            min: counts[0],
            max: counts[n - 1],
            mean,
            median,
            p90,
            gini,
            top_decile_share,
        }
    }
}

/// Full structural profile of a sparse matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct StructureProfile {
    /// Per-row (example) nonzero distribution.
    pub rows: NnzDistribution,
    /// Per-column (feature) nonzero distribution.
    pub cols: NnzDistribution,
    /// ELLPACK padding the matrix would incur: max-row-width·rows / nnz.
    pub ell_padding_ratio: f64,
    /// Fraction of rows with no nonzeros at all.
    pub empty_row_fraction: f64,
    /// Fraction of columns with no nonzeros at all.
    pub empty_col_fraction: f64,
}

impl StructureProfile {
    /// Profile a CSR matrix.
    pub fn of(csr: &CsrMatrix) -> Self {
        let row_counts: Vec<usize> = (0..csr.rows()).map(|r| csr.row(r).nnz()).collect();
        let mut col_counts = vec![0usize; csr.cols()];
        for &c in csr.indices() {
            col_counts[c as usize] += 1;
        }
        let empty_rows = row_counts.iter().filter(|&&c| c == 0).count();
        let empty_cols = col_counts.iter().filter(|&&c| c == 0).count();
        let max_row = row_counts.iter().copied().max().unwrap_or(0);
        let ell_padding_ratio = if csr.nnz() == 0 {
            1.0
        } else {
            (max_row * csr.rows()) as f64 / csr.nnz() as f64
        };
        StructureProfile {
            rows: NnzDistribution::from_counts(row_counts.clone()),
            cols: NnzDistribution::from_counts(col_counts),
            ell_padding_ratio,
            empty_row_fraction: empty_rows as f64 / csr.rows().max(1) as f64,
            empty_col_fraction: empty_cols as f64 / csr.cols().max(1) as f64,
        }
    }
}

impl std::fmt::Display for StructureProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "rows: nnz min {} / median {} / mean {:.1} / p90 {} / max {} (gini {:.2}, top-10% share {:.0}%)",
            self.rows.min,
            self.rows.median,
            self.rows.mean,
            self.rows.p90,
            self.rows.max,
            self.rows.gini,
            100.0 * self.rows.top_decile_share
        )?;
        writeln!(
            f,
            "cols: nnz min {} / median {} / mean {:.1} / p90 {} / max {} (gini {:.2}, top-10% share {:.0}%)",
            self.cols.min,
            self.cols.median,
            self.cols.mean,
            self.cols.p90,
            self.cols.max,
            self.cols.gini,
            100.0 * self.cols.top_decile_share
        )?;
        write!(
            f,
            "ELLPACK padding ratio {:.2}; empty rows {:.1}%, empty cols {:.1}%",
            self.ell_padding_ratio,
            100.0 * self.empty_row_fraction,
            100.0 * self.empty_col_fraction
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    #[test]
    fn uniform_counts_have_zero_gini() {
        let d = NnzDistribution::from_counts(vec![5; 20]);
        assert_eq!(d.min, 5);
        assert_eq!(d.max, 5);
        assert_eq!(d.median, 5);
        assert!((d.gini).abs() < 1e-12);
        assert!((d.top_decile_share - 0.1).abs() < 1e-6);
    }

    #[test]
    fn concentrated_counts_have_high_gini() {
        let mut counts = vec![0usize; 99];
        counts.push(1000);
        let d = NnzDistribution::from_counts(counts);
        assert!(d.gini > 0.95, "gini {}", d.gini);
        assert!((d.top_decile_share - 1.0).abs() < 1e-9);
        assert_eq!(d.median, 0);
        assert_eq!(d.max, 1000);
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let d = NnzDistribution::from_counts((1..=100).collect());
        assert_eq!(d.min, 1);
        assert_eq!(d.max, 100);
        assert_eq!(d.median, 50);
        assert_eq!(d.p90, 90);
        assert!((d.mean - 50.5).abs() < 1e-12);
    }

    #[test]
    fn profile_of_known_matrix() {
        // [1 1 1; 0 0 1; 0 0 0] — rows 3,1,0; cols 1,1,2.
        let mut coo = CooMatrix::new(3, 3);
        for &(r, c) in &[(0, 0), (0, 1), (0, 2), (1, 2)] {
            coo.push(r, c, 1.0).unwrap();
        }
        let p = StructureProfile::of(&coo.to_csr());
        assert_eq!(p.rows.max, 3);
        assert_eq!(p.cols.max, 2);
        assert!((p.empty_row_fraction - 1.0 / 3.0).abs() < 1e-12);
        assert!((p.empty_col_fraction - 0.0).abs() < 1e-12);
        // ELL: width 3 × 3 rows / 4 nnz.
        assert!((p.ell_padding_ratio - 9.0 / 4.0).abs() < 1e-12);
        let text = p.to_string();
        assert!(text.contains("rows:"));
        assert!(text.contains("ELLPACK padding ratio 2.25"));
    }

    #[test]
    fn gini_is_scale_invariant() {
        let a = NnzDistribution::from_counts(vec![1, 2, 3, 4]);
        let b = NnzDistribution::from_counts(vec![10, 20, 30, 40]);
        assert!((a.gini - b.gini).abs() < 1e-12);
    }
}

//! Dense vector helpers used throughout the solvers.
//!
//! Model weights, shared vectors, and labels are dense `f32` slices; these
//! helpers centralize the inner products and norms that appear in the update
//! rules, the objectives, and the adaptive-aggregation closed form. All
//! reductions accumulate in `f64` — the duality-gap plots in the paper go
//! down to 1e-7, below single-precision accumulation noise at webspam scale.

/// Euclidean inner product ⟨a, b⟩ with `f64` accumulation.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x as f64) * (y as f64))
        .sum()
}

/// Squared L2 norm ‖a‖² with `f64` accumulation.
#[inline]
pub fn squared_norm(a: &[f32]) -> f64 {
    a.iter().map(|&x| (x as f64) * (x as f64)).sum()
}

/// ‖a − b‖² with `f64` accumulation.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn squared_distance(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "squared_distance: length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = (x as f64) - (y as f64);
            d * d
        })
        .sum()
}

/// `out[i] = a[i] - b[i]`, allocating the result.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn sub(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x - y).collect()
}

/// [`sub`] into a reusable buffer (cleared and refilled) — bit-identical
/// result, allocation-free once `out`'s capacity has grown.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn sub_into(a: &[f32], b: &[f32], out: &mut Vec<f32>) {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    out.clear();
    out.extend(a.iter().zip(b).map(|(&x, &y)| x - y));
}

/// `y[i] += alpha * x[i]` in place.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scale a vector in place: `x[i] *= alpha`.
#[inline]
pub fn scale(alpha: f32, x: &mut [f32]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Maximum absolute difference between two vectors (L∞ distance).
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "max_abs_diff: length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let a = [1.0f32, 2.0, -3.0];
        let b = [4.0f32, 0.5, 2.0];
        assert!((dot(&a, &b) - (4.0 + 1.0 - 6.0)).abs() < 1e-12);
        assert!((squared_norm(&a) - 14.0).abs() < 1e-12);
        assert!((squared_distance(&a, &b) - (9.0 + 2.25 + 25.0)).abs() < 1e-12);
    }

    #[test]
    fn axpy_and_scale() {
        let x = [1.0f32, -1.0];
        let mut y = [10.0f32, 10.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 8.0]);
        scale(0.5, &mut y);
        assert_eq!(y, [6.0, 4.0]);
    }

    #[test]
    fn sub_and_linf() {
        let a = [1.0f32, 5.0];
        let b = [0.5f32, 7.0];
        assert_eq!(sub(&a, &b), vec![0.5, -2.0]);
        assert_eq!(max_abs_diff(&a, &b), 2.0);
    }

    #[test]
    #[should_panic(expected = "dot: length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn f64_accumulation_beats_f32() {
        // 1 + eps-sized values: naive f32 accumulation loses them entirely.
        let mut v = vec![1.0f32];
        v.extend(std::iter::repeat(1e-8f32).take(1_000_000));
        let s = v.iter().map(|&x| x as f64).sum::<f64>();
        assert!((dot(&v, &vec![1.0f32; v.len()]) - s).abs() < 1e-9);
        assert!(dot(&v, &vec![1.0f32; v.len()]) > 1.009);
    }
}

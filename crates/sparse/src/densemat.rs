//! Small dense matrices in f64 — the companion to the sparse formats for
//! everything that genuinely needs dense algebra: the closed-form ridge
//! reference solution (normal equations), AsySCD's Hessian, and tests.
//!
//! Deliberately minimal: row-major storage, Gram-matrix construction from a
//! sparse CSC operand, and Gaussian elimination with partial pivoting.
//! Anything larger-scale belongs to the sparse path — that is the point of
//! the paper.

use crate::CscMatrix;

/// A dense row-major f64 matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity of size n.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for d in 0..n {
            m.set(d, d, 1.0);
        }
        m
    }

    /// Build from row slices.
    ///
    /// # Panics
    /// Panics on ragged input.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map(|row| row.len()).unwrap_or(0);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        DenseMatrix { rows: r, cols: c, data }
    }

    /// The Gram matrix AᵀA of a sparse operand (dense M×M output).
    pub fn gram_from_csc(a: &CscMatrix) -> Self {
        let m = a.cols();
        let mut out = Self::zeros(m, m);
        let mut dense_col = vec![0.0f64; a.rows()];
        for i in 0..m {
            for v in dense_col.iter_mut() {
                *v = 0.0;
            }
            let col_i = a.col(i);
            for (&r, &v) in col_i.indices.iter().zip(col_i.values) {
                dense_col[r as usize] = v as f64;
            }
            for j in i..m {
                let col_j = a.col(j);
                let mut acc = 0.0;
                for (&r, &v) in col_j.indices.iter().zip(col_j.values) {
                    acc += dense_col[r as usize] * v as f64;
                }
                out.set(i, j, acc);
                out.set(j, i, acc);
            }
        }
        out
    }

    /// Rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Add `v` to every diagonal element (regularization shift).
    pub fn add_diagonal(&mut self, v: f64) {
        let n = self.rows.min(self.cols);
        for d in 0..n {
            self.data[d * self.cols + d] += v;
        }
    }

    /// Dense mat-vec `A x`.
    ///
    /// # Panics
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec: length mismatch");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(x).map(|(&a, &b)| a * b).sum())
            .collect()
    }

    /// Solve `A x = b` by Gaussian elimination with partial pivoting,
    /// consuming the matrix. `None` for (numerically) singular systems.
    ///
    /// # Panics
    /// Panics if the matrix is not square or `b.len() != rows`.
    pub fn solve(mut self, mut b: Vec<f64>) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve: square matrix required");
        assert_eq!(b.len(), self.rows, "solve: rhs length mismatch");
        let n = self.rows;
        for col in 0..n {
            let pivot = (col..n).max_by(|&i, &j| {
                self.get(i, col)
                    .abs()
                    .partial_cmp(&self.get(j, col).abs())
                    .expect("finite entries")
            })?;
            if self.get(pivot, col).abs() < 1e-12 {
                return None;
            }
            if pivot != col {
                for k in 0..n {
                    let (a, b2) = (self.get(col, k), self.get(pivot, k));
                    self.set(col, k, b2);
                    self.set(pivot, k, a);
                }
                b.swap(col, pivot);
            }
            for row in col + 1..n {
                let factor = self.get(row, col) / self.get(col, col);
                if factor != 0.0 {
                    for k in col..n {
                        let v = self.get(row, k) - factor * self.get(col, k);
                        self.set(row, k, v);
                    }
                    b[row] -= factor * b[col];
                }
            }
        }
        let mut x = vec![0.0f64; n];
        for col in (0..n).rev() {
            let mut acc = b[col];
            for (k, &x_k) in x.iter().enumerate().skip(col + 1) {
                acc -= self.get(col, k) * x_k;
            }
            x[col] = acc / self.get(col, col);
        }
        Some(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    #[test]
    fn construction_and_access() {
        let mut m = DenseMatrix::zeros(2, 3);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        let i = DenseMatrix::identity(3);
        assert_eq!(i.get(1, 1), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
    }

    #[test]
    fn from_rows_and_matvec() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rejected() {
        let _ = DenseMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn gram_matches_manual() {
        // A = [1 2; 0 3]; AᵀA = [1 2; 2 13].
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 1, 2.0).unwrap();
        coo.push(1, 1, 3.0).unwrap();
        let g = DenseMatrix::gram_from_csc(&coo.to_csc());
        assert_eq!(g.get(0, 0), 1.0);
        assert_eq!(g.get(0, 1), 2.0);
        assert_eq!(g.get(1, 0), 2.0);
        assert_eq!(g.get(1, 1), 13.0);
    }

    #[test]
    fn add_diagonal_shifts() {
        let mut m = DenseMatrix::zeros(2, 2);
        m.add_diagonal(0.5);
        assert_eq!(m.get(0, 0), 0.5);
        assert_eq!(m.get(1, 1), 0.5);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn solve_recovers_known_solution() {
        let m = DenseMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x_true = [0.5, -1.5];
        let b = m.matvec(&x_true);
        let x = m.solve(b).unwrap();
        assert!((x[0] - 0.5).abs() < 1e-12);
        assert!((x[1] + 1.5).abs() < 1e-12);
    }

    #[test]
    fn solve_needs_pivoting() {
        let m = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![2.0, 1.0]]);
        let x = m.solve(vec![1.0, 4.0]).unwrap();
        assert!((x[0] - 1.5).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_detects_singularity() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(m.solve(vec![1.0, 2.0]).is_none());
    }
}

//! Sparse linear algebra substrate for the TPA-SCD reproduction.
//!
//! The paper (Parnell et al., IPPS 2017) stores the training-data matrix in
//! **compressed sparse column** format when solving the primal form of ridge
//! regression (coordinate descent walks columns / features) and in
//! **compressed sparse row** format when solving the dual (coordinate ascent
//! walks rows / examples). This crate provides those formats, a COO builder,
//! conversions, the matrix–vector products needed by the objectives and the
//! duality gap, per-column/row squared norms (the denominators of the update
//! rules), row/column slicing for distributed partitioning, and LIBSVM text
//! I/O.
//!
//! All matrix values are `f32`, matching the paper's 32-bit floating point
//! representation; reductions that feed convergence metrics accumulate in
//! `f64` to keep the duality gap trustworthy at the 1e-7 level the paper
//! plots.

pub mod coo;
pub mod csc;
pub mod csr;
pub mod dense;
pub mod densemat;
pub mod ell;
pub mod io;
pub mod kernels;
pub mod perm;
pub mod structure;

pub use coo::CooMatrix;
pub use densemat::DenseMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use ell::EllMatrix;
pub use structure::{NnzDistribution, StructureProfile};

/// Errors produced while building or manipulating sparse matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// An entry's row index was out of bounds for the declared shape.
    RowOutOfBounds { row: usize, rows: usize },
    /// An entry's column index was out of bounds for the declared shape.
    ColOutOfBounds { col: usize, cols: usize },
    /// A dense operand had the wrong length for the matrix shape.
    DimensionMismatch { expected: usize, got: usize },
    /// Raw CSR/CSC arrays were structurally invalid (bad offsets, indices).
    InvalidStructure(String),
    /// A text record could not be parsed (LIBSVM I/O).
    Parse { line: usize, message: String },
}

impl std::fmt::Display for SparseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparseError::RowOutOfBounds { row, rows } => {
                write!(f, "row index {row} out of bounds for {rows} rows")
            }
            SparseError::ColOutOfBounds { col, cols } => {
                write!(f, "column index {col} out of bounds for {cols} columns")
            }
            SparseError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            SparseError::InvalidStructure(msg) => write!(f, "invalid sparse structure: {msg}"),
            SparseError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for SparseError {}

/// A borrowed view of one sparse column (primal coordinate) or sparse row
/// (dual coordinate): parallel slices of indices into the dense dimension and
/// the corresponding values.
#[derive(Debug, Clone, Copy)]
pub struct SparseVecView<'a> {
    /// Indices into the dense companion vector (rows for a column view,
    /// columns for a row view). Strictly increasing within a view.
    pub indices: &'a [u32],
    /// Values aligned with `indices`.
    pub values: &'a [f32],
}

impl<'a> SparseVecView<'a> {
    /// Number of stored (structurally nonzero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Squared L2 norm, accumulated in `f64`.
    #[inline]
    pub fn squared_norm(&self) -> f64 {
        self.values.iter().map(|&v| (v as f64) * (v as f64)).sum()
    }

    /// Inner product with a dense vector, accumulated in `f64`.
    ///
    /// `dense` must be at least as long as the largest stored index.
    ///
    /// **Accumulation contract.** This is the *reference* reduction: every
    /// product is formed exactly in `f64` (f32 × f32 is exact at 53-bit
    /// precision) and added strictly left to right. Convergence metrics —
    /// objectives, the duality gap, matvecs feeding them — go through this
    /// method, so golden figure series are pinned to this exact order. The
    /// solver hot loops use the unrolled kernels in [`mod@kernels`]
    /// instead, which sum the same exact products in a different (but
    /// equally deterministic) lane order; [`mod@kernels`] documents the
    /// divergence bound between the two.
    #[inline]
    pub fn dot_dense(&self, dense: &[f32]) -> f64 {
        let mut acc = 0.0f64;
        for (&i, &v) in self.indices.iter().zip(self.values) {
            acc += (dense[i as usize] as f64) * (v as f64);
        }
        acc
    }

    /// `dense[i] += scale * value_i` for every stored entry.
    ///
    /// Delegates to the unrolled [`kernels::axpy`]; because the stored
    /// indices are distinct, the unrolled form performs the identical
    /// sequence of independent adds and the result is bit-identical to a
    /// scalar loop.
    #[inline]
    pub fn axpy_into(&self, scale: f32, dense: &mut [f32]) {
        kernels::axpy(self.indices, self.values, scale, dense);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_vec_view_basics() {
        let indices = [1u32, 3, 4];
        let values = [2.0f32, -1.0, 0.5];
        let v = SparseVecView {
            indices: &indices,
            values: &values,
        };
        assert_eq!(v.nnz(), 3);
        assert!((v.squared_norm() - (4.0 + 1.0 + 0.25)).abs() < 1e-12);
        let dense = [1.0f32, 2.0, 3.0, 4.0, 5.0];
        // 2*2 + (-1)*4 + 0.5*5 = 4 - 4 + 2.5
        assert!((v.dot_dense(&dense) - 2.5).abs() < 1e-12);
        let mut out = [0.0f32; 5];
        v.axpy_into(2.0, &mut out);
        assert_eq!(out, [0.0, 4.0, 0.0, -2.0, 1.0]);
    }

    #[test]
    fn error_display() {
        let e = SparseError::RowOutOfBounds { row: 7, rows: 3 };
        assert!(e.to_string().contains("row index 7"));
        let e = SparseError::DimensionMismatch {
            expected: 4,
            got: 2,
        };
        assert!(e.to_string().contains("expected 4"));
    }
}

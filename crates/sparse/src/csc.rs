//! Compressed sparse column format.
//!
//! The primal solvers walk features, i.e. columns a_m of the data matrix, so
//! the paper stores the matrix in CSC when solving the primal formulation.

use crate::csr::validate_compressed;
use crate::{CsrMatrix, SparseError, SparseVecView};

/// An immutable sparse matrix in compressed sparse column format.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    /// `offsets[c]..offsets[c+1]` is the slice of column c; len = cols + 1.
    offsets: Vec<usize>,
    /// Row indices, strictly increasing within each column.
    indices: Vec<u32>,
    /// Values aligned with `indices`.
    values: Vec<f32>,
}

impl CscMatrix {
    /// Build from raw arrays after validating the structure.
    pub fn from_raw(
        rows: usize,
        cols: usize,
        offsets: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<Self, SparseError> {
        validate_compressed(cols, rows, &offsets, &indices, &values)?;
        Ok(Self::from_raw_unchecked(rows, cols, offsets, indices, values))
    }

    pub(crate) fn from_raw_unchecked(
        rows: usize,
        cols: usize,
        offsets: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        debug_assert!(validate_compressed(cols, rows, &offsets, &indices, &values).is_ok());
        CscMatrix {
            rows,
            cols,
            offsets,
            indices,
            values,
        }
    }

    /// Number of rows (training examples, N).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (features, M).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Column offset array (length `cols + 1`).
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Row index array.
    #[inline]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Value array.
    #[inline]
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Borrow column `m` (the primal coordinate a_m).
    ///
    /// # Panics
    /// Panics if `m >= self.cols()`.
    #[inline]
    pub fn col(&self, m: usize) -> SparseVecView<'_> {
        let lo = self.offsets[m];
        let hi = self.offsets[m + 1];
        SparseVecView {
            indices: &self.indices[lo..hi],
            values: &self.values[lo..hi],
        }
    }

    /// Iterate over all columns in order.
    pub fn iter_cols(&self) -> impl Iterator<Item = SparseVecView<'_>> + '_ {
        (0..self.cols).map(move |m| self.col(m))
    }

    /// ‖a_m‖² for every column — the denominators of the primal update rule (2).
    pub fn col_squared_norms(&self) -> Vec<f64> {
        self.iter_cols().map(|c| c.squared_norm()).collect()
    }

    /// Dense product `out = A x` computed column-wise: Σ_m x_m · a_m.
    ///
    /// This is the primal shared vector w = Aβ.
    pub fn matvec(&self, x: &[f32]) -> Result<Vec<f32>, SparseError> {
        if x.len() != self.cols {
            return Err(SparseError::DimensionMismatch {
                expected: self.cols,
                got: x.len(),
            });
        }
        let mut out = vec![0.0f32; self.rows];
        self.matvec_into(x, &mut out)?;
        Ok(out)
    }

    /// [`Self::matvec`] into a caller-owned buffer of length `rows` —
    /// bit-identical output, no allocation. `out` is overwritten.
    pub fn matvec_into(&self, x: &[f32], out: &mut [f32]) -> Result<(), SparseError> {
        if x.len() != self.cols {
            return Err(SparseError::DimensionMismatch {
                expected: self.cols,
                got: x.len(),
            });
        }
        if out.len() != self.rows {
            return Err(SparseError::DimensionMismatch {
                expected: self.rows,
                got: out.len(),
            });
        }
        out.fill(0.0);
        for (m, col) in self.iter_cols().enumerate() {
            if x[m] != 0.0 {
                col.axpy_into(x[m], out);
            }
        }
        Ok(())
    }

    /// Dense product `out = Aᵀ y`.
    pub fn matvec_t(&self, y: &[f32]) -> Result<Vec<f32>, SparseError> {
        let mut out = vec![0.0f32; self.cols];
        self.matvec_t_into(y, &mut out)?;
        Ok(out)
    }

    /// [`Self::matvec_t`] into a caller-owned buffer of length `cols` —
    /// bit-identical output, no allocation. `out` is overwritten.
    pub fn matvec_t_into(&self, y: &[f32], out: &mut [f32]) -> Result<(), SparseError> {
        if y.len() != self.rows {
            return Err(SparseError::DimensionMismatch {
                expected: self.rows,
                got: y.len(),
            });
        }
        if out.len() != self.cols {
            return Err(SparseError::DimensionMismatch {
                expected: self.cols,
                got: out.len(),
            });
        }
        for (col, slot) in self.iter_cols().zip(out.iter_mut()) {
            *slot = col.dot_dense(y) as f32;
        }
        Ok(())
    }

    /// Extract the submatrix formed by the given columns, in the given order.
    /// Row indices are preserved (the example space is global) — this is the
    /// "partition by feature" operation of the distributed primal solver.
    ///
    /// # Panics
    /// Panics if any column index is out of bounds.
    pub fn select_cols(&self, cols: &[usize]) -> CscMatrix {
        let mut offsets = Vec::with_capacity(cols.len() + 1);
        offsets.push(0usize);
        let nnz: usize = cols
            .iter()
            .map(|&c| self.offsets[c + 1] - self.offsets[c])
            .sum();
        let mut indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        for &c in cols {
            let lo = self.offsets[c];
            let hi = self.offsets[c + 1];
            indices.extend_from_slice(&self.indices[lo..hi]);
            values.extend_from_slice(&self.values[lo..hi]);
            offsets.push(indices.len());
        }
        CscMatrix::from_raw_unchecked(self.rows, cols.len(), offsets, indices, values)
    }

    /// Convert to compressed sparse row format.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.rows + 1];
        for &r in &self.indices {
            counts[r as usize + 1] += 1;
        }
        for r in 0..self.rows {
            counts[r + 1] += counts[r];
        }
        let offsets = counts.clone();
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0.0f32; self.nnz()];
        let mut cursor = counts;
        for c in 0..self.cols {
            let lo = self.offsets[c];
            let hi = self.offsets[c + 1];
            for k in lo..hi {
                let r = self.indices[k] as usize;
                let dst = cursor[r];
                indices[dst] = c as u32;
                values[dst] = self.values[k];
                cursor[r] += 1;
            }
        }
        CsrMatrix::from_raw_unchecked(self.rows, self.cols, offsets, indices, values)
    }

    /// Bytes consumed by the stored arrays (see [`CsrMatrix::memory_bytes`]).
    pub fn memory_bytes(&self) -> usize {
        self.values.len() * 4 + self.indices.len() * 4 + self.offsets.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn sample() -> CscMatrix {
        // [1 0 2 0]
        // [0 3 0 0]
        // [4 0 0 5]
        let mut m = CooMatrix::new(3, 4);
        for &(r, c, v) in &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0), (2, 0, 4.0), (2, 3, 5.0)] {
            m.push(r, c, v).unwrap();
        }
        m.to_csc()
    }

    #[test]
    fn col_views() {
        let m = sample();
        let c0 = m.col(0);
        assert_eq!(c0.indices, &[0, 2]);
        assert_eq!(c0.values, &[1.0, 4.0]);
        assert_eq!(m.col(3).values, &[5.0]);
        assert_eq!(m.iter_cols().count(), 4);
    }

    #[test]
    fn matvec_matches_csr() {
        let m = sample();
        let x = [1.0f32, 2.0, 3.0, 4.0];
        assert_eq!(m.matvec(&x).unwrap(), vec![7.0, 6.0, 24.0]);
        let y = [1.0f32, 2.0, 3.0];
        assert_eq!(m.matvec_t(&y).unwrap(), vec![13.0, 6.0, 2.0, 15.0]);
    }

    #[test]
    fn col_norms() {
        let m = sample();
        assert_eq!(m.col_squared_norms(), vec![17.0, 9.0, 4.0, 25.0]);
    }

    #[test]
    fn select_cols_reorders() {
        let m = sample();
        let s = m.select_cols(&[3, 0]);
        assert_eq!(s.cols(), 2);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.col(0).indices, &[2]);
        assert_eq!(s.col(1).indices, &[0, 2]);
    }

    #[test]
    fn csc_to_csr_roundtrip() {
        let m = sample();
        let csr = m.to_csr();
        let back = csr.to_csc();
        assert_eq!(m, back);
    }

    #[test]
    fn matvec_skips_zero_coefficients() {
        let m = sample();
        let x = [0.0f32, 0.0, 0.0, 0.0];
        assert_eq!(m.matvec(&x).unwrap(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn from_raw_validates() {
        assert!(CscMatrix::from_raw(2, 2, vec![0, 1, 1], vec![0], vec![1.0]).is_ok());
        assert!(CscMatrix::from_raw(2, 2, vec![0, 1, 1], vec![3], vec![1.0]).is_err());
    }
}

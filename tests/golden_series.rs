//! Golden-series regression: the deterministic (`with_host_threads(1)`)
//! TPA-SCD convergence series — epoch, cumulative simulated seconds, and
//! duality gap — must be **byte-identical** to the checked-in golden CSVs.
//!
//! This pins down the executor's cost-accounting contract end to end: any
//! change to the bulk memory API, the executor pool, the roofline model, or
//! the block scheduler that shifts either the trajectory or the simulated
//! clock by one ULP shows up as a diff here. To bless an intentional
//! change, run with `SCD_BLESS=1` and commit the rewritten files under
//! `tests/golden/`.

use std::sync::Arc;
use tpa_scd::core::{Form, RidgeProblem, Solver, TpaScd};
use tpa_scd::datasets::{scale_values, webspam_like};
use tpa_scd::gpu::{Gpu, GpuProfile};

const EPOCHS: usize = 20;

fn problem() -> RidgeProblem {
    let data = scale_values(&webspam_like(150, 120, 10, 55), 0.3);
    RidgeProblem::from_labelled(&data, 1e-3).unwrap()
}

/// Render the series with round-trip-exact float formatting ({:.17e}
/// recovers every f64 bit pattern), so byte equality == bit equality.
fn series_csv(form: Form) -> String {
    let p = problem();
    let gpu = Arc::new(Gpu::new(GpuProfile::quadro_m4000()).with_host_threads(1));
    let mut solver = TpaScd::new(&p, form, gpu, 1).unwrap();
    let mut out = String::from("epoch,simulated_seconds,duality_gap\n");
    let mut seconds = 0.0f64;
    out.push_str(&format!("0,{:.17e},{:.17e}\n", 0.0, solver.duality_gap(&p)));
    for e in 1..=EPOCHS {
        let stats = solver.epoch(&p);
        seconds += stats.breakdown.total();
        out.push_str(&format!(
            "{e},{seconds:.17e},{:.17e}\n",
            solver.duality_gap(&p)
        ));
    }
    out
}

fn check(form: Form, golden_path: &str, golden: &str) {
    let got = series_csv(form);
    if std::env::var("SCD_BLESS").is_ok() {
        std::fs::write(golden_path, &got).unwrap();
        return;
    }
    assert!(
        got == golden,
        "{golden_path} diverged from the deterministic series.\n\
         If the change is intentional, regenerate with SCD_BLESS=1.\n\
         --- got ---\n{got}\n--- golden ---\n{golden}"
    );
}

#[test]
fn primal_series_matches_golden_csv() {
    check(
        Form::Primal,
        "tests/golden/tpa_primal_series.csv",
        include_str!("golden/tpa_primal_series.csv"),
    );
}

#[test]
fn dual_series_matches_golden_csv() {
    check(
        Form::Dual,
        "tests/golden/tpa_dual_series.csv",
        include_str!("golden/tpa_dual_series.csv"),
    );
}

//! Cross-crate integration: every engine in the workspace — sequential,
//! deterministic-async, real-thread-async, TPA-SCD on the simulated GPU,
//! and the distributed driver — must agree on the optimum of one shared
//! problem, certified against the closed-form ridge solution.

use std::sync::Arc;
use tpa_scd::core::{
    exact_primal, AsyncCpuMode, AsyncCpuScd, AsyncSimScd, Form, RidgeProblem, SequentialScd,
    Solver, TpaScd,
};
use tpa_scd::datasets::{scale_values, webspam_like};
use tpa_scd::distributed::{Aggregation, DistributedConfig, DistributedScd};
use tpa_scd::gpu::{Gpu, GpuProfile};
use tpa_scd::sparse::dense;

fn shared_problem() -> RidgeProblem {
    let data = scale_values(&webspam_like(300, 400, 25, 99), 0.3);
    RidgeProblem::from_labelled(&data, 1e-3).expect("valid problem")
}

fn assert_near_exact(label: &str, problem: &RidgeProblem, beta: &[f32], tol: f32) {
    let exact = exact_primal(problem);
    let diff = dense::max_abs_diff(beta, &exact);
    assert!(
        diff < tol,
        "{label}: max weight error vs closed form = {diff} (tol {tol})"
    );
}

#[test]
fn all_primal_engines_find_the_same_optimum() {
    let problem = shared_problem();

    let mut seq = SequentialScd::primal(&problem, 1);
    for _ in 0..120 {
        seq.epoch(&problem);
    }
    assert_near_exact("sequential", &problem, &seq.weights(), 1e-3);

    let mut atomic = AsyncSimScd::a_scd(&problem, Form::Primal, 2);
    for _ in 0..120 {
        atomic.epoch(&problem);
    }
    assert_near_exact("A-SCD (sim)", &problem, &atomic.weights(), 1e-3);

    let mut threads = AsyncCpuScd::new(&problem, Form::Primal, AsyncCpuMode::Atomic, 4, 3);
    for _ in 0..120 {
        threads.epoch(&problem);
    }
    assert_near_exact("A-SCD (real threads)", &problem, &threads.weights(), 1e-3);

    let gpu = Arc::new(Gpu::new(GpuProfile::quadro_m4000()));
    let mut tpa = TpaScd::new(&problem, Form::Primal, gpu, 4).expect("fits");
    for _ in 0..120 {
        tpa.epoch(&problem);
    }
    assert_near_exact("TPA-SCD", &problem, &tpa.weights(), 1e-3);

    let config = DistributedConfig::new(4, Form::Primal)
        .with_aggregation(Aggregation::Adaptive)
        .with_seed(5);
    let mut dist = DistributedScd::new(&problem, &config).expect("cluster builds");
    for _ in 0..400 {
        dist.epoch(&problem);
    }
    assert_near_exact("distributed adaptive", &problem, &dist.weights(), 2e-3);
}

#[test]
fn dual_engines_recover_the_primal_optimum_through_eq5() {
    let problem = shared_problem();
    let exact = exact_primal(&problem);

    let mut seq = SequentialScd::dual(&problem, 1);
    for _ in 0..150 {
        seq.epoch(&problem);
    }
    let beta_from_dual = problem.induced_primal(&seq.weights());
    assert!(
        dense::max_abs_diff(&beta_from_dual, &exact) < 2e-3,
        "dual sequential solution must map to β* via Eq. 5"
    );

    let gpu = Arc::new(Gpu::new(GpuProfile::titan_x_maxwell()));
    let mut tpa = TpaScd::new(&problem, Form::Dual, gpu, 2).expect("fits");
    for _ in 0..150 {
        tpa.epoch(&problem);
    }
    let beta_from_tpa = problem.induced_primal(&tpa.weights());
    assert!(
        dense::max_abs_diff(&beta_from_tpa, &exact) < 2e-3,
        "dual TPA-SCD solution must map to β* via Eq. 5"
    );
}

#[test]
fn primal_and_dual_optimal_objectives_coincide() {
    // Strong duality: P(β*) = D(α*), approached from both sides.
    let problem = shared_problem();
    let mut primal = SequentialScd::primal(&problem, 7);
    let mut dual = SequentialScd::dual(&problem, 7);
    for _ in 0..150 {
        primal.epoch(&problem);
        dual.epoch(&problem);
    }
    let p_star = problem.primal_objective(&primal.weights());
    let d_star = problem.dual_objective(&dual.weights());
    let rel = (p_star - d_star).abs() / p_star.abs().max(1e-12);
    assert!(rel < 1e-4, "P* = {p_star}, D* = {d_star}, rel gap {rel}");
}

#[test]
fn wild_engines_violate_optimality_but_stay_useful() {
    // The paper's central negative result about PASSCoDe-Wild, end to end.
    let problem = shared_problem();
    let mut wild = AsyncSimScd::wild(&problem, Form::Primal, 11);
    let mut clean = SequentialScd::primal(&problem, 11);
    for _ in 0..120 {
        wild.epoch(&problem);
        clean.epoch(&problem);
    }
    let (gw, gc) = (wild.duality_gap(&problem), clean.duality_gap(&problem));
    assert!(gw > 100.0 * gc, "wild gap {gw} must plateau far above clean {gc}");
    // ... yet its objective is within a few percent of optimal.
    let obj_wild = problem.primal_objective(&wild.weights());
    let obj_star = problem.primal_objective(&clean.weights());
    assert!(
        obj_wild < obj_star * 1.1,
        "wild objective {obj_wild} should stay near optimal {obj_star}"
    );
}

#[test]
fn distributed_tpa_cluster_agrees_with_single_gpu() {
    let problem = shared_problem();
    let gpu = Arc::new(Gpu::new(GpuProfile::quadro_m4000()).with_host_threads(1));
    let mut single = TpaScd::new(&problem, Form::Dual, gpu, 5).expect("fits");
    for _ in 0..200 {
        single.epoch(&problem);
    }

    let config = DistributedConfig::new(3, Form::Dual)
        .with_aggregation(Aggregation::Adaptive)
        .with_solver(tpa_scd::distributed::LocalSolverKind::Tpa {
            profile: GpuProfile::quadro_m4000(),
            lanes: 64,
            deterministic: true,
        })
        .with_seed(6);
    let mut cluster = DistributedScd::new(&problem, &config).expect("cluster builds");
    for _ in 0..400 {
        cluster.epoch(&problem);
    }
    let diff = dense::max_abs_diff(&single.weights(), &cluster.weights());
    assert!(
        diff < 5e-3,
        "3-GPU cluster and single GPU must agree on α*, diff {diff}"
    );
}

//! Reproducibility: every engine, generator, and experiment path in this
//! repository is deterministic in its seeds — two constructions with the
//! same inputs produce bit-identical trajectories. This is what makes the
//! figure CSVs stable artifacts rather than single samples.

use std::sync::Arc;
use tpa_scd::core::extensions::{ElasticNetCd, LogisticSdca, SdcaSvm};
use tpa_scd::core::{
    AsyncSimScd, Form, MiniBatchSdca, RidgeProblem, SequentialScd, Solver, TpaScd,
};
use tpa_scd::datasets::{criteo_like, scale_values, webspam_like};
use tpa_scd::distributed::{
    Aggregation, DistributedConfig, DistributedScd, ParamServerConfig, ParamServerScd,
};
use tpa_scd::gpu::{Gpu, GpuProfile};

fn problem() -> RidgeProblem {
    let data = scale_values(&webspam_like(150, 120, 10, 55), 0.3);
    RidgeProblem::from_labelled(&data, 1e-3).unwrap()
}

fn run_twice<S: Solver>(mut build: impl FnMut() -> S, p: &RidgeProblem, epochs: usize) {
    let mut a = build();
    let mut b = build();
    for _ in 0..epochs {
        a.epoch(p);
        b.epoch(p);
    }
    assert_eq!(a.weights(), b.weights(), "{} not deterministic", a.name());
}

#[test]
fn generators_are_deterministic() {
    assert_eq!(
        webspam_like(60, 50, 6, 9).matrix.to_dense(),
        webspam_like(60, 50, 6, 9).matrix.to_dense()
    );
    assert_eq!(
        criteo_like(40, 4, 12, 9).matrix.to_dense(),
        criteo_like(40, 4, 12, 9).matrix.to_dense()
    );
}

#[test]
fn single_node_engines_are_deterministic() {
    let p = problem();
    run_twice(|| SequentialScd::primal(&p, 3), &p, 4);
    run_twice(|| SequentialScd::dual(&p, 3), &p, 4);
    run_twice(|| AsyncSimScd::a_scd(&p, Form::Primal, 3), &p, 4);
    run_twice(|| AsyncSimScd::wild(&p, Form::Dual, 3), &p, 4);
    run_twice(|| MiniBatchSdca::new(&p, 8, 3), &p, 4);
}

#[test]
fn tpa_scd_is_deterministic_with_one_host_thread() {
    let p = problem();
    run_twice(
        || {
            let gpu = Arc::new(Gpu::new(GpuProfile::quadro_m4000()).with_host_threads(1));
            TpaScd::new(&p, Form::Dual, gpu, 3).unwrap()
        },
        &p,
        4,
    );
}

#[test]
fn distributed_cluster_is_deterministic() {
    let p = problem();
    run_twice(
        || {
            let config = DistributedConfig::new(4, Form::Primal)
                .with_aggregation(Aggregation::Adaptive)
                .with_seed(8);
            DistributedScd::new(&p, &config).unwrap()
        },
        &p,
        5,
    );
    run_twice(
        || {
            let config = ParamServerConfig::new(3, Form::Primal)
                .with_chunk(8)
                .with_seed(8);
            ParamServerScd::new(&p, &config)
        },
        &p,
        5,
    );
}

#[test]
fn extension_solvers_are_deterministic() {
    let p = RidgeProblem::from_labelled(&webspam_like(100, 80, 8, 21), 1e-2).unwrap();
    let run_pair = |f: &mut dyn FnMut() -> Vec<f32>| {
        let a = f();
        let b = f();
        assert_eq!(a, b);
    };
    run_pair(&mut || {
        let mut s = SdcaSvm::new(&p, 4);
        for _ in 0..4 {
            s.epoch(&p);
        }
        s.weights().to_vec()
    });
    run_pair(&mut || {
        let mut s = LogisticSdca::new(&p, 4);
        for _ in 0..4 {
            s.epoch(&p);
        }
        s.weights().to_vec()
    });
    run_pair(&mut || {
        let mut s = ElasticNetCd::new(&p, 0.5, 4);
        for _ in 0..4 {
            s.epoch(&p);
        }
        s.weights().to_vec()
    });
}

#[test]
fn different_seeds_change_the_trajectory_but_not_the_destination() {
    let p = problem();
    let run = |seed: u64| {
        let mut s = SequentialScd::primal(&p, seed);
        let early = {
            s.epoch(&p);
            s.weights()
        };
        for _ in 0..99 {
            s.epoch(&p);
        }
        (early, s.weights())
    };
    let (early_a, final_a) = run(1);
    let (early_b, final_b) = run(2);
    assert_ne!(early_a, early_b, "different seeds must differ early");
    let max_diff = final_a
        .iter()
        .zip(&final_b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max);
    assert!(max_diff < 1e-3, "both must converge to β*, diff {max_diff}");
}

//! Property-based tests on the core invariants of the system, driven by
//! randomly generated problems.

use proptest::prelude::*;
use tpa_scd::core::{
    exact_primal, optimal_gamma_primal, updates, Form, RidgeProblem, SequentialScd, Solver,
};
use tpa_scd::sparse::dense;
use tpa_scd::sparse::CooMatrix;

/// Strategy: a small random sparse problem with at least one nonzero per
/// row (so the dual coordinates are meaningful) and λ in a sane range.
fn arb_problem() -> impl Strategy<Value = RidgeProblem> {
    (2usize..10, 2usize..10, 1u64..1_000_000, 1u32..100).prop_map(|(n, m, seed, lam)| {
        // Deterministic pseudo-random fill from the seed.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as f32 / (1u64 << 31) as f32 - 0.5
        };
        let mut coo = CooMatrix::new(n, m);
        let mut labels = Vec::with_capacity(n);
        for r in 0..n {
            // 1..=m entries per row.
            let row_nnz = 1 + (next().abs() * m as f32) as usize % m;
            for c in 0..row_nnz {
                coo.push(r, c, next() * 2.0).unwrap();
            }
            labels.push(next() * 2.0);
        }
        RidgeProblem::new(coo.to_csr(), labels, lam as f64 / 100.0).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Weak duality: P(β) ≥ D(α) for arbitrary iterates on arbitrary
    /// problems, so both duality gaps are non-negative.
    #[test]
    fn weak_duality_holds_everywhere(problem in arb_problem(), scale in -2.0f32..2.0) {
        let beta: Vec<f32> = (0..problem.m()).map(|i| scale * ((i % 5) as f32 - 2.0) / 5.0).collect();
        let alpha: Vec<f32> = (0..problem.n()).map(|i| scale * ((i % 3) as f32 - 1.0) / 3.0).collect();
        let p = problem.primal_objective(&beta);
        let d = problem.dual_objective(&alpha);
        prop_assert!(p >= d - 1e-6 * p.abs().max(1.0));
    }

    /// The primal coordinate update (Eq. 2) exactly minimizes its
    /// one-dimensional subproblem: after applying it, re-deriving the
    /// update for the same coordinate yields (numerically) zero.
    #[test]
    fn primal_update_is_a_fixed_point(problem in arb_problem(), coord_sel in 0usize..100) {
        let m = coord_sel % problem.m();
        let col = problem.csc().col(m);
        prop_assume!(col.nnz() > 0);
        let mut beta = vec![0.0f32; problem.m()];
        let mut w = vec![0.0f32; problem.n()];
        let dot = |w: &[f32]| -> f64 {
            col.indices.iter().zip(col.values)
                .map(|(&i, &v)| (problem.labels()[i as usize] as f64 - w[i as usize] as f64) * v as f64)
                .sum()
        };
        let d1 = updates::primal_delta(dot(&w), beta[m] as f64, problem.col_sq_norms()[m], problem.n_lambda());
        beta[m] += d1 as f32;
        col.axpy_into(d1 as f32, &mut w);
        let d2 = updates::primal_delta(dot(&w), beta[m] as f64, problem.col_sq_norms()[m], problem.n_lambda());
        // Second application moves by at most f32 rounding of the first.
        prop_assert!(d2.abs() <= d1.abs() * 1e-5 + 1e-6, "d1={d1}, d2={d2}");
    }

    /// Sequential SCD monotonically decreases the primal objective
    /// epoch-over-epoch (exact coordinate minimization can never increase
    /// it) and ends close to the closed-form optimum.
    #[test]
    fn scd_descends_to_the_exact_optimum(problem in arb_problem()) {
        let mut solver = SequentialScd::primal(&problem, 13);
        let mut prev = problem.primal_objective(&solver.weights());
        for _ in 0..60 {
            solver.epoch(&problem);
            let cur = problem.primal_objective(&solver.weights());
            prop_assert!(cur <= prev + 1e-5 * prev.abs().max(1e-9), "{prev} -> {cur}");
            prev = cur;
        }
        let exact = exact_primal(&problem);
        let diff = dense::max_abs_diff(&solver.weights(), &exact);
        // Tolerance scales with the optimum's magnitude.
        let scale = exact.iter().fold(1.0f32, |a, &b| a.max(b.abs()));
        prop_assert!(diff <= 2e-2 * scale, "diff {diff}, scale {scale}");
    }

    /// The optimality mappings are mutually consistent everywhere:
    /// induced_dual(induced_primal(α*)) = α* at the optimum.
    #[test]
    fn optimality_mappings_roundtrip_at_optimum(problem in arb_problem()) {
        let beta_star = exact_primal(&problem);
        let alpha_star = problem.induced_dual(&beta_star);
        let beta_back = problem.induced_primal(&alpha_star);
        let scale = beta_star.iter().fold(1.0f32, |a, &b| a.max(b.abs()));
        prop_assert!(dense::max_abs_diff(&beta_star, &beta_back) <= 1e-3 * scale);
    }

    /// The closed-form γ* is optimal on its line: no sampled γ does better.
    #[test]
    fn gamma_star_beats_any_sampled_gamma(problem in arb_problem(), dir_seed in 1u64..1000) {
        let mut state = dir_seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f32 / (1u64 << 31) as f32 - 0.5
        };
        let beta: Vec<f32> = (0..problem.m()).map(|_| next()).collect();
        let dbeta: Vec<f32> = (0..problem.m()).map(|_| next()).collect();
        let w = problem.csc().matvec(&beta).unwrap();
        let dw = problem.csc().matvec(&dbeta).unwrap();
        let gamma = optimal_gamma_primal(
            problem.labels(), &w, &dw,
            dense::dot(&beta, &dbeta),
            dense::squared_norm(&dbeta),
            problem.n_lambda(),
        );
        let apply = |g: f64| {
            let cand: Vec<f32> = beta.iter().zip(&dbeta).map(|(&b, &d)| b + g as f32 * d).collect();
            problem.primal_objective(&cand)
        };
        let best = apply(gamma);
        for g in [-2.0, -0.5, 0.0, 0.25, 0.5, 1.0, 2.0] {
            prop_assert!(best <= apply(g) + 1e-5 * best.abs().max(1.0),
                "gamma* {gamma} worse than sampled {g}");
        }
    }

    /// Duality gap is invariant to which engine produced the weights: it is
    /// a pure function of the iterate.
    #[test]
    fn gap_is_a_pure_function_of_weights(problem in arb_problem()) {
        let mut a = SequentialScd::primal(&problem, 3);
        for _ in 0..3 { a.epoch(&problem); }
        let weights = a.weights();
        let g1 = problem.primal_duality_gap(&weights);
        let g2 = problem.duality_gap(Form::Primal, &weights);
        prop_assert!((g1 - g2).abs() < 1e-15);
        prop_assert!(g1 >= 0.0);
    }
}

//! Miniature versions of the paper's headline claims, small enough to run
//! in the test suite. The full-size reproductions are the `fig1`…`fig10`
//! binaries in `crates/bench`; these tests pin the *direction* of every
//! claim so a regression anywhere in the stack trips CI.

use std::sync::Arc;
use tpa_scd::core::async_sim::scaled_staleness;
use tpa_scd::core::{AsyncSimScd, Form, RidgeProblem, SequentialScd, Solver, TpaScd};
use tpa_scd::datasets::{scale_values, webspam_like, webspam_like_custom};
use tpa_scd::distributed::{Aggregation, DistributedConfig, DistributedScd, LocalSolverKind};
use tpa_scd::gpu::{Gpu, GpuProfile};
use tpa_scd::perf::scaling::{scale_cpu, scale_gpu, scale_link};
use tpa_scd::perf::{CpuProfile, LinkProfile};

/// Paper-scale factors for a stand-in problem (see `scd_perf_model::scaling`
/// and the figure harness): webspam has ≈9e8 nonzeros and shared vectors of
/// 262,938 (primal w) / 680,715 (dual w̄) floats.
fn paper_scales(p: &RidgeProblem, form: Form) -> (f64, f64, f64) {
    let compute = 9.0e8 / p.csr().nnz() as f64;
    let paper_shared = match form {
        Form::Primal => 262_938usize,
        Form::Dual => 680_715,
    };
    let vector = paper_shared as f64 / p.shared_len(form) as f64;
    let paper_coords = match form {
        Form::Primal => 680_715usize,
        Form::Dual => 262_938,
    };
    let coord = (9.0e8 / paper_coords as f64) / (p.csr().nnz() as f64 / p.coords(form) as f64);
    (compute, vector, coord)
}

/// A cluster config with all scale-sensitive hardware terms corrected.
fn scaled_config(p: &RidgeProblem, k: usize, form: Form) -> DistributedConfig {
    let (compute, vector, _) = paper_scales(p, form);
    DistributedConfig::new(k, form)
        .with_network(scale_link(&LinkProfile::ethernet_10g(), compute, vector))
        .with_pcie(scale_link(&LinkProfile::pcie3_x16(), compute, vector))
        .with_cpu(scale_cpu(&CpuProfile::xeon_e5_2640(), compute, vector))
}

fn webspam_mini() -> RidgeProblem {
    let data = scale_values(&webspam_like(250, 350, 60, 0xEB), 0.25);
    RidgeProblem::from_labelled(&data, 1e-3).unwrap()
}

fn webspam_dist_mini() -> RidgeProblem {
    let data = scale_values(&webspam_like_custom(400, 600, 25, 0.3, 0xEB), 0.4);
    RidgeProblem::from_labelled(&data, 1e-3).unwrap()
}

/// Run to gap ≤ eps, returning (epochs, simulated seconds) or None.
fn to_gap(solver: &mut dyn Solver, p: &RidgeProblem, eps: f64, cap: usize) -> Option<(usize, f64)> {
    let mut secs = 0.0;
    for e in 1..=cap {
        secs += solver.epoch(p).seconds();
        if solver.duality_gap(p) <= eps {
            return Some((e, secs));
        }
    }
    None
}

#[test]
fn fig1_fig2_speedup_ordering() {
    // §III-D: at equal duality gap, simulated training time must order
    // SCD(1t) > A-SCD(16t) > TPA-SCD(M4000) > TPA-SCD(Titan X).
    for form in [Form::Primal, Form::Dual] {
        let p = webspam_mini();
        let eps = 1e-4;
        let cap = 300;
        let window = scaled_staleness(16, p.coords(form), 680_715);

        let mut seq: Box<dyn Solver> = Box::new(match form {
            Form::Primal => SequentialScd::primal(&p, 1),
            Form::Dual => SequentialScd::dual(&p, 1),
        });
        let (_, t_seq) = to_gap(seq.as_mut(), &p, eps, cap).expect("seq converges");

        let mut ascd = AsyncSimScd::a_scd(&p, form, 1).with_staleness(window);
        let (_, t_ascd) = to_gap(&mut ascd, &p, eps, cap).expect("A-SCD converges");

        let (compute, _, coord) = paper_scales(&p, form);
        let gm = Arc::new(
            Gpu::new(scale_gpu(&GpuProfile::quadro_m4000(), compute, coord)).with_host_threads(1),
        );
        let mut m4000 = TpaScd::new(&p, form, gm, 1).unwrap();
        let (_, t_m4000) = to_gap(&mut m4000, &p, eps, cap).expect("M4000 converges");

        let gt = Arc::new(
            Gpu::new(scale_gpu(&GpuProfile::titan_x_maxwell(), compute, coord))
                .with_host_threads(1),
        );
        let mut titan = TpaScd::new(&p, form, gt, 1).unwrap();
        let (_, t_titan) = to_gap(&mut titan, &p, eps, cap).expect("Titan converges");

        assert!(
            t_seq > t_ascd && t_ascd > t_m4000 && t_m4000 > t_titan,
            "{}: expected seq {t_seq} > ascd {t_ascd} > m4000 {t_m4000} > titan {t_titan}",
            form.label()
        );
        // The A-SCD speedup is ≈2x by calibration; TPA at least 5x.
        assert!(t_seq / t_ascd > 1.5 && t_seq / t_ascd < 3.0);
        assert!(t_seq / t_m4000 > 5.0, "M4000 speedup {}", t_seq / t_m4000);
    }
}

#[test]
fn fig1_wild_plateaus_while_others_converge() {
    let p = webspam_mini();
    let mut wild = AsyncSimScd::wild(&p, Form::Primal, 1).with_staleness(0);
    let mut seq = SequentialScd::primal(&p, 1);
    for _ in 0..150 {
        wild.epoch(&p);
        seq.epoch(&p);
    }
    let (gw, gs) = (wild.duality_gap(&p), seq.duality_gap(&p));
    assert!(gs < 1e-6, "sequential converges, gap {gs}");
    assert!(gw > 1e-5, "wild plateaus, gap {gw}");
}

#[test]
fn fig3_distributed_epochs_grow_with_workers() {
    let p = webspam_dist_mini();
    let mut prev = 0usize;
    for k in [1usize, 2, 4, 8] {
        let config = DistributedConfig::new(k, Form::Primal).with_seed(9);
        let mut d = DistributedScd::new(&p, &config).unwrap();
        let (e, _) = to_gap(&mut d, &p, 1e-4, 2000).expect("distributed converges");
        assert!(
            e >= prev,
            "epochs must not decrease with workers: K={k} took {e} < {prev}"
        );
        prev = e;
    }
}

#[test]
fn fig4_adaptive_beats_averaging_at_k8() {
    let p = webspam_dist_mini();
    let run = |agg| {
        let config = DistributedConfig::new(8, Form::Primal)
            .with_aggregation(agg)
            .with_seed(4);
        let mut d = DistributedScd::new(&p, &config).unwrap();
        to_gap(&mut d, &p, 1e-4, 2000).expect("converges").0
    };
    let avg = run(Aggregation::Averaging);
    let ada = run(Aggregation::Adaptive);
    assert!(ada < avg, "adaptive {ada} must beat averaging {avg}");
}

#[test]
fn fig5_gamma_settles_above_one_over_k() {
    let p = webspam_dist_mini();
    for k in [2usize, 4, 8] {
        let config = DistributedConfig::new(k, Form::Primal)
            .with_aggregation(Aggregation::Adaptive)
            .with_seed(5);
        let mut d = DistributedScd::new(&p, &config).unwrap();
        for _ in 0..30 {
            d.epoch(&p);
        }
        assert!(
            d.last_gamma() > 1.0 / k as f64,
            "K={k}: settled gamma {} <= 1/K",
            d.last_gamma()
        );
    }
}

#[test]
fn fig6_adaptive_scaling_is_flatter_than_averaging() {
    let p = webspam_dist_mini();
    let time_ratio = |agg| {
        let time_at = |k| {
            let config = scaled_config(&p, k, Form::Primal)
                .with_aggregation(agg)
                .with_seed(6);
            let mut d = DistributedScd::new(&p, &config).unwrap();
            to_gap(&mut d, &p, 3e-4, 3000).expect("converges").1
        };
        time_at(8) / time_at(1)
    };
    let averaging = time_ratio(Aggregation::Averaging);
    let adaptive = time_ratio(Aggregation::Adaptive);
    assert!(
        adaptive < averaging,
        "adaptive K8/K1 time ratio {adaptive} must be flatter than averaging {averaging}"
    );
    assert!(adaptive < 4.0, "adaptive scaling should be roughly flat, got {adaptive}");
}

#[test]
fn fig8_tpa_workers_beat_cpu_workers_at_every_k() {
    let p = webspam_dist_mini();
    let (compute, _, coord) = paper_scales(&p, Form::Dual);
    for k in [1usize, 4] {
        let cpu_cfg = scaled_config(&p, k, Form::Dual).with_seed(8);
        let mut cpu = DistributedScd::new(&p, &cpu_cfg).unwrap();
        let (_, t_cpu) = to_gap(&mut cpu, &p, 1e-4, 2000).expect("cpu cluster converges");

        let gpu_cfg = scaled_config(&p, k, Form::Dual)
            .with_solver(LocalSolverKind::Tpa {
                profile: scale_gpu(&GpuProfile::quadro_m4000(), compute, coord),
                lanes: 64,
                deterministic: true,
            })
            .with_seed(8);
        let mut gpu = DistributedScd::new(&p, &gpu_cfg).unwrap();
        let (_, t_gpu) = to_gap(&mut gpu, &p, 1e-4, 2000).expect("gpu cluster converges");
        assert!(
            t_gpu < t_cpu,
            "K={k}: TPA cluster {t_gpu}s must beat CPU cluster {t_cpu}s"
        );
    }
}

#[test]
fn fig9_communication_share_grows_with_workers_but_stays_minor() {
    let p = webspam_dist_mini();
    let comm_share = |k: usize| {
        let config = DistributedConfig::new(k, Form::Dual)
            .with_solver(LocalSolverKind::Tpa {
                profile: GpuProfile::quadro_m4000(),
                lanes: 64,
                deterministic: true,
            })
            .with_seed(9);
        let mut d = DistributedScd::new(&p, &config).unwrap();
        let mut total = tpa_scd::core::TimeBreakdown::default();
        for _ in 0..10 {
            total.accumulate(&d.epoch(&p).breakdown);
        }
        (total.pcie + total.network) / total.total()
    };
    let s1 = comm_share(1);
    let s8 = comm_share(8);
    assert!(s8 > s1, "communication share must grow with K: {s1} -> {s8}");
}

#[test]
fn fig10_gpu_cluster_dominates_on_criteo_shape() {
    use tpa_scd::datasets::criteo_like;
    let data = criteo_like(2_000, 10, 60, 7);
    let p = RidgeProblem::from_labelled(&data, 1e-3).unwrap();
    let k = 4;
    let eps = 1e-3;

    let mut cpu = DistributedScd::new(&p, &DistributedConfig::new(k, Form::Dual).with_seed(10))
        .unwrap();
    let (_, t_cpu) = to_gap(&mut cpu, &p, eps, 1000).expect("cpu converges");

    let gpu_cfg = DistributedConfig::new(k, Form::Dual)
        .with_aggregation(Aggregation::Adaptive)
        .with_solver(LocalSolverKind::Tpa {
            profile: GpuProfile::titan_x_maxwell(),
            lanes: 64,
            deterministic: true,
        })
        .with_seed(10);
    let mut gpu = DistributedScd::new(&p, &gpu_cfg).unwrap();
    let (_, t_gpu) = to_gap(&mut gpu, &p, eps, 1000).expect("gpu converges");
    assert!(
        t_gpu < t_cpu,
        "Titan X cluster ({t_gpu}s) must beat CPU cluster ({t_cpu}s)"
    );
}

//! # tpa-scd — Large-Scale Stochastic Learning using (simulated) GPUs
//!
//! A from-scratch Rust reproduction of *Parnell, Dünner, Atasu, Sifalakis,
//! Pozidis — "Large-Scale Stochastic Learning using GPUs" (IPPS 2017,
//! arXiv:1702.07005)*.
//!
//! This facade crate re-exports the whole workspace under one roof:
//!
//! * [`sparse`] — COO/CSR/CSC sparse linear algebra, LIBSVM I/O.
//! * [`datasets`] — synthetic webspam-like and criteo-like generators.
//! * [`perf`] — calibrated hardware cost models (Xeon, M4000, Titan X,
//!   10 GbE, PCIe 3.0).
//! * [`events`] — deterministic discrete-event engine (virtual clock,
//!   totally ordered event queue, perf-model-timed channels) behind the
//!   bounded-staleness distributed driver.
//! * [`sched`] — the work-stealing host scheduler every subsystem's
//!   threads come from: per-worker deques, nesting-aware task groups,
//!   one process-wide pool sized to the machine.
//! * [`gpu`] — the software GPU: SMs, thread blocks, SIMT lanes, block
//!   barriers, f32 atomic adds, cycle accounting.
//! * [`core`] — ridge regression (primal/dual), duality gap, sequential SCD,
//!   asynchronous CPU engines (A-SCD, PASSCoDe-Wild) and **TPA-SCD**
//!   (Algorithm 2) running on the simulated GPU.
//! * [`distributed`] — the cluster runtime: partition by feature/example,
//!   Algorithm 3 (averaging) and Algorithm 4 (adaptive aggregation),
//!   distributed TPA-SCD, communication/computation time accounting.
//!
//! ## Quickstart
//!
//! ```
//! use tpa_scd::datasets::{scale_values, webspam_like};
//! use tpa_scd::core::{RidgeProblem, SequentialScd, Solver};
//!
//! // A small webspam-shaped problem (values scaled into the paper's
//! // well-conditioned Nλ/‖a‖² regime).
//! let data = scale_values(&webspam_like(300, 500, 15, 42), 0.3);
//! let problem = RidgeProblem::from_labelled(&data, 1e-3).unwrap();
//! let mut solver = SequentialScd::primal(&problem, 7);
//! for _ in 0..50 {
//!     solver.epoch(&problem);
//! }
//! assert!(problem.primal_duality_gap(&solver.weights()) < 1e-4);
//! ```

pub use gpu_sim as gpu;
pub use scd_core as core;
pub use scd_datasets as datasets;
pub use scd_distributed as distributed;
pub use scd_events as events;
pub use scd_perf_model as perf;
pub use scd_sched as sched;
pub use scd_sparse as sparse;
pub use scd_store as store;

//! Click-through-rate prediction at (scaled) criteo shape: one-hot
//! categorical features whose values are all exactly 1, trained in the dual
//! across a 4-GPU cluster with adaptive aggregation — the paper's §V-B
//! headline experiment, where 4 Titan X GPUs train a 40 GB day of click
//! logs "to a high degree of accuracy in around 4 seconds".
//!
//! ```sh
//! cargo run --release --example click_prediction
//! ```

use tpa_scd::core::{AsyncCpuMode, Form, RidgeProblem, Solver};
use tpa_scd::datasets::criteo_like;
use tpa_scd::distributed::{
    Aggregation, DistributedConfig, DistributedScd, LocalSolverKind,
};
use tpa_scd::gpu::GpuProfile;
use tpa_scd::perf::scaling::{scale_cpu, scale_gpu, scale_link};
use tpa_scd::perf::{CpuProfile, LinkProfile};

fn run(label: &str, problem: &RidgeProblem, config: DistributedConfig, epochs: usize) -> f64 {
    let mut cluster = DistributedScd::new(problem, &config).expect("cluster builds");
    let mut seconds = 0.0;
    for _ in 0..epochs {
        seconds += cluster.epoch(problem).seconds();
    }
    println!(
        "{label:<28} {:>9.4} simulated s, duality gap {:.2e}",
        seconds,
        cluster.duality_gap(problem)
    );
    seconds
}

fn main() {
    // 10,000 ad impressions over 30 categorical fields of 200 values each
    // (criteo's day: 200M impressions, 39 fields, 75M features).
    let data = criteo_like(10_000, 30, 200, 7);
    let problem = RidgeProblem::from_labelled(&data, 1e-3).expect("valid problem");
    println!(
        "CTR problem: {} impressions x {} one-hot features (all values = 1.0)\n",
        problem.n(),
        problem.m()
    );

    let k = 4;
    let epochs = 60;

    // Our stand-in is ~26,000x smaller than the paper's 40 GB criteo day
    // (7.8e9 nonzeros, 75M-long dual shared vector). Rescale the fixed
    // hardware costs so the time model keeps the paper's ratios — see
    // `scd_perf_model::scaling` for the reasoning.
    let compute_scale = 7.8e9 / problem.csr().nnz() as f64;
    let vector_scale = 75.0e6 / problem.m() as f64;
    let coord_scale = 39.0 / (problem.csr().nnz() as f64 / problem.n() as f64);
    let network = scale_link(&LinkProfile::pcie3_x16(), compute_scale, vector_scale);
    let cpu = scale_cpu(&CpuProfile::xeon_e5_2640(), compute_scale, vector_scale);
    let titan = scale_gpu(&GpuProfile::titan_x_maxwell(), compute_scale, coord_scale);

    // Reference 1: four single-thread CPU workers (Algorithm 3).
    let cpu_s = run(
        "4x SCD (1 thread)",
        &problem,
        DistributedConfig::new(k, Form::Dual)
            .with_network(network.clone())
            .with_cpu(cpu.clone())
            .with_seed(3),
        epochs,
    );

    // Reference 2: four 16-thread PASSCoDe-Wild workers.
    let wild_s = run(
        "4x PASSCoDe-Wild (16 thr)",
        &problem,
        DistributedConfig::new(k, Form::Dual)
            .with_network(network.clone())
            .with_cpu(cpu.clone())
            .with_solver(LocalSolverKind::AsyncSim {
                mode: AsyncCpuMode::Wild,
                threads: 16,
                paper_scale_staleness: true,
            })
            .with_seed(3),
        epochs,
    );

    // The paper's system: four Titan X GPUs running TPA-SCD with adaptive
    // aggregation.
    let gpu_s = run(
        "4x TPA-SCD (Titan X)",
        &problem,
        DistributedConfig::new(k, Form::Dual)
            .with_network(network.clone())
            .with_pcie(network)
            .with_cpu(cpu)
            .with_aggregation(Aggregation::Adaptive)
            .with_solver(LocalSolverKind::Tpa {
                profile: titan,
                lanes: 64,
                deterministic: true,
            })
            .with_seed(3),
        epochs,
    );

    println!(
        "\nGPU cluster vs 1-thread workers: {:.0}x faster per {epochs} epochs",
        cpu_s / gpu_s
    );
    println!(
        "GPU cluster vs wild workers:     {:.0}x faster per {epochs} epochs",
        wild_s / gpu_s
    );
    println!("(paper, full-scale criteo: ~40x and ~20x respectively)");
}

//! Regularization path: solve ridge regression across a descending λ grid
//! with warm starts — the protocol of the paper's reference [4] (Friedman,
//! Hastie & Tibshirani), whose coordinate-descent inner loop is exactly
//! Algorithm 1 — and pick λ on a held-out split.
//!
//! ```sh
//! cargo run --release --example regularization_path
//! ```

use tpa_scd::core::{RegularizationPath, RidgeProblem};
use tpa_scd::datasets::{scale_values, train_test_split, webspam_like};

fn main() {
    let corpus = scale_values(&webspam_like(800, 500, 25, 77), 0.3);
    let (train, test) = train_test_split(&corpus, 0.75, 3);
    let base = RidgeProblem::from_labelled(&train, 1.0).expect("valid problem");

    let grid = RegularizationPath::log_grid(1.0, 1e-4, 8);
    let path = RegularizationPath::solve(&base, &grid, 1e-6, 300, 7);

    let test_csr = test.matrix.to_csr();
    println!("{:>12} {:>8} {:>12} {:>12}", "lambda", "epochs", "gap", "test_mse");
    for pt in &path.points {
        let scores = test_csr.matvec(&pt.beta).expect("width matches");
        let mse: f64 = scores
            .iter()
            .zip(&test.labels)
            .map(|(&s, &y)| (s as f64 - y as f64).powi(2))
            .sum::<f64>()
            / test.labels.len() as f64;
        println!("{:>12.4e} {:>8} {:>12.3e} {:>12.6}", pt.lambda, pt.epochs, pt.gap, mse);
    }
    println!(
        "\ntotal epochs across the warm-started path: {}",
        path.total_epochs()
    );
    let best = path
        .best_by_validation(&test_csr, &test.labels)
        .expect("non-empty path");
    println!("validation-selected lambda: {:.4e}", best.lambda);
}

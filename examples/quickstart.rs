//! Quickstart: train ridge regression with sequential stochastic coordinate
//! descent (Algorithm 1) and watch the duality gap drop to machine noise.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tpa_scd::core::{exact_primal, RidgeProblem, SequentialScd, Solver};
use tpa_scd::datasets::{scale_values, webspam_like};

fn main() {
    // A small sparse classification problem shaped like the paper's
    // webspam dataset: more features than examples, skewed feature
    // popularity, ±1 labels.
    // (Values are scaled down so the effective regularization ratio
    // Nλ/‖a_m‖² sits in the paper's well-conditioned regime.)
    let data = scale_values(&webspam_like(600, 1_000, 30, 42), 0.3);
    let problem = RidgeProblem::from_labelled(&data, 1e-3).expect("valid problem");
    println!(
        "problem: {} examples x {} features, {} nonzeros, lambda = {}",
        problem.n(),
        problem.m(),
        problem.csr().nnz(),
        problem.lambda()
    );

    // Solve the primal formulation: one epoch = one permuted pass over all
    // features, each optimized exactly in closed form.
    let mut solver = SequentialScd::primal(&problem, 7);
    println!("\n{:>6} {:>14} {:>14}", "epoch", "duality gap", "sim. seconds");
    let mut seconds = 0.0;
    for epoch in 1..=100 {
        let stats = solver.epoch(&problem);
        seconds += stats.seconds();
        if epoch % 10 == 0 {
            println!(
                "{epoch:>6} {:>14.3e} {:>14.6}",
                solver.duality_gap(&problem),
                seconds
            );
        }
    }

    // The duality gap is an optimality *certificate*: compare against the
    // closed-form ridge solution to see it is not lying.
    let beta_scd = solver.weights();
    let beta_exact = exact_primal(&problem);
    let max_diff = beta_scd
        .iter()
        .zip(&beta_exact)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("\nmax |beta_scd - beta_exact| = {max_diff:.2e}");
    println!("final duality gap            = {:.2e}", solver.duality_gap(&problem));
    assert!(max_diff < 1e-2, "SCD should land on the exact optimum");
    println!("\nSCD reached the closed-form ridge optimum. ✓");
}

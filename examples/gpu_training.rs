//! GPU-accelerated training with TPA-SCD (Algorithm 2) on the simulated
//! Quadro M4000 and GTX Titan X, including the device-memory capacity
//! check that motivates the paper's move to distributed training.
//!
//! ```sh
//! cargo run --release --example gpu_training
//! ```

use std::sync::Arc;
use tpa_scd::core::{Form, RidgeProblem, SequentialScd, Solver, TpaScd};
use tpa_scd::datasets::{scale_values, webspam_like};
use tpa_scd::gpu::{Gpu, GpuError, GpuProfile};

fn time_to_gap(solver: &mut dyn Solver, problem: &RidgeProblem, eps: f64) -> (usize, f64) {
    let mut seconds = 0.0;
    for epoch in 1..=300 {
        seconds += solver.epoch(problem).seconds();
        if solver.duality_gap(problem) <= eps {
            return (epoch, seconds);
        }
    }
    (usize::MAX, seconds)
}

fn main() {
    // Dense-ish columns (hundreds of nonzeros) keep the per-thread-block
    // work in the regime where the paper's GPUs shine.
    let data = scale_values(&webspam_like(800, 1_400, 300, 9), 0.25);
    let problem = RidgeProblem::from_labelled(&data, 1e-3).expect("valid problem");
    let eps = 1e-5;
    println!(
        "training to duality gap {eps:.0e} on {} x {} ({} nnz)\n",
        problem.n(),
        problem.m(),
        problem.csr().nnz()
    );

    // Baseline: Algorithm 1 on one CPU thread, with the calibrated Xeon
    // timing model.
    let mut cpu = SequentialScd::dual(&problem, 3);
    let (cpu_epochs, cpu_seconds) = time_to_gap(&mut cpu, &problem, eps);
    println!("SCD (1 thread):     {cpu_epochs:>4} epochs, {cpu_seconds:>10.4} simulated s");

    // TPA-SCD: one thread block per coordinate, lanes striding the sparse
    // row, atomic write-back — on both of the paper's GPUs.
    for profile in [GpuProfile::quadro_m4000(), GpuProfile::titan_x_maxwell()] {
        let name = profile.name;
        let gpu = Arc::new(Gpu::new(profile));
        let mut tpa = TpaScd::new(&problem, Form::Dual, gpu, 3).expect("fits in device memory");
        let (epochs, seconds) = time_to_gap(&mut tpa, &problem, eps);
        println!(
            "TPA-SCD ({name}): {epochs:>4} epochs, {seconds:>10.4} simulated s  ({:.1}x)",
            cpu_seconds / seconds
        );
    }

    // The capacity wall: a criteo-scale dataset does not fit on one card.
    // (We only *account* the bytes — nothing this large is allocated.)
    println!("\ndevice-memory capacity check:");
    let titan = Gpu::new(GpuProfile::titan_x_maxwell());
    let criteo_bytes = 40_000_000_000usize; // the paper's 40 GB sample
    match titan.reserve_bytes(criteo_bytes) {
        Err(GpuError::OutOfMemory { capacity, .. }) => println!(
            "  criteo (40 GB) vs Titan X ({:.0} GB): does not fit -> distribute it \
             (see the distributed_cluster example)",
            capacity as f64 / 1e9
        ),
        Err(other) => unreachable!("unexpected error {other}"),
        Ok(()) => unreachable!("40 GB cannot fit a 12 GB device"),
    }
}

//! Distributed training across a simulated cluster: Algorithm 3 (averaging)
//! vs Algorithm 4 (adaptive aggregation) on 4 workers, then a 4-GPU cluster
//! running TPA-SCD as the local solver — the paper's §IV–V pipeline.
//!
//! ```sh
//! cargo run --release --example distributed_cluster
//! ```

use tpa_scd::core::{Form, RidgeProblem, Solver};
use tpa_scd::distributed::{
    Aggregation, DistributedConfig, DistributedScd, LocalSolverKind, PartitionStrategy,
};
use tpa_scd::datasets::{scale_values, webspam_like_custom};
use tpa_scd::gpu::GpuProfile;

fn main() {
    let data = scale_values(&webspam_like_custom(1_200, 1_800, 50, 0.3, 21), 0.4);
    let problem = RidgeProblem::from_labelled(&data, 1e-3).expect("valid problem");
    let k = 4;
    println!(
        "distributing {} x {} ({} nnz) by feature across {k} workers\n",
        problem.n(),
        problem.m(),
        problem.csr().nnz()
    );

    // Averaging vs adaptive aggregation, sequential local solvers.
    for aggregation in [Aggregation::Averaging, Aggregation::Adaptive] {
        let config = DistributedConfig::new(k, Form::Primal)
            .with_aggregation(aggregation)
            .with_strategy(PartitionStrategy::Random(5))
            .with_seed(17);
        let mut cluster = DistributedScd::new(&problem, &config).expect("cluster builds");
        let mut epochs_to_target = None;
        for epoch in 1..=400 {
            cluster.epoch(&problem);
            if cluster.duality_gap(&problem) <= 1e-5 {
                epochs_to_target = Some(epoch);
                break;
            }
        }
        println!(
            "{:<10} aggregation: epochs to gap 1e-5 = {:?}, final gamma = {:.3}",
            aggregation.label(),
            epochs_to_target,
            cluster.last_gamma()
        );
    }

    // Now put a (simulated) GPU in every worker: distributed TPA-SCD, the
    // configuration behind the paper's Figs. 8-10.
    let config = DistributedConfig::new(k, Form::Dual)
        .with_aggregation(Aggregation::Adaptive)
        .with_solver(LocalSolverKind::Tpa {
            profile: GpuProfile::titan_x_maxwell(),
            lanes: 64,
            deterministic: true,
        })
        .with_seed(17);
    let mut gpu_cluster = DistributedScd::new(&problem, &config).expect("cluster builds");
    let mut seconds = 0.0;
    let mut breakdown = None;
    for _ in 1..=400 {
        let stats = gpu_cluster.epoch(&problem);
        seconds += stats.seconds();
        if gpu_cluster.duality_gap(&problem) <= 1e-5 {
            breakdown = Some(stats.breakdown);
            break;
        }
    }
    println!(
        "\n4x Titan X (dual form, adaptive): gap 1e-5 in {seconds:.4} simulated s \
         (gap now {:.1e})",
        gpu_cluster.duality_gap(&problem)
    );
    if let Some(b) = breakdown {
        println!(
            "last epoch breakdown: gpu {:.1e}s | host {:.1e}s | pcie {:.1e}s | network {:.1e}s",
            b.gpu, b.host, b.pcie, b.network
        );
        println!(
            "(on a problem this small the unscaled 10GbE latency dominates — the figure \
             harness rescales link profiles to the paper's communication/computation \
             ratio; see scd_perf_model::scaling)"
        );
    }
}

//! Web-spam filtering, the paper's motivating workload: train on a
//! webspam-shaped corpus with a 75/25 train/test split (the paper's own
//! protocol for the webspam sample) and compare ridge regression against
//! the SVM extension, both trained by coordinate methods.
//!
//! ```sh
//! cargo run --release --example text_classification
//! ```

use tpa_scd::core::extensions::SdcaSvm;
use tpa_scd::core::{RidgeProblem, SequentialScd, Solver};
use tpa_scd::datasets::{train_test_split, webspam_like, DatasetStats};
use tpa_scd::sparse::io::LabelledData;

/// Classification accuracy of sign(⟨a, β⟩) on a labelled set.
fn accuracy(beta: &[f32], data: &LabelledData) -> f64 {
    let csr = data.matrix.to_csr();
    let mut correct = 0usize;
    for (i, row) in csr.iter_rows().enumerate() {
        let score = row.dot_dense(beta);
        let pred = if score >= 0.0 { 1.0 } else { -1.0 };
        if pred == data.labels[i] as f64 {
            correct += 1;
        }
    }
    correct as f64 / data.labels.len() as f64
}

fn main() {
    // The corpus: documents over a skewed vocabulary, spam labels from a
    // sparse ground truth with 10% label noise.
    let corpus = webspam_like(1_200, 2_000, 40, 2024);
    let (train, test) = train_test_split(&corpus, 0.75, 11);
    println!("train: {}", DatasetStats::of(&train));
    println!("test:  {}", DatasetStats::of(&test));

    // Ridge regression on ±1 labels (the paper's setup for webspam).
    let ridge_problem = RidgeProblem::from_labelled(&train, 1e-3).expect("valid problem");
    let mut ridge = SequentialScd::primal(&ridge_problem, 1);
    for _ in 0..40 {
        ridge.epoch(&ridge_problem);
    }
    let ridge_beta = ridge.weights();
    println!(
        "\nridge (primal SCD, 40 epochs): duality gap {:.1e}",
        ridge.duality_gap(&ridge_problem)
    );
    println!(
        "  train accuracy {:.1}%, test accuracy {:.1}%",
        100.0 * accuracy(&ridge_beta, &train),
        100.0 * accuracy(&ridge_beta, &test)
    );

    // Hinge-loss SVM by stochastic dual coordinate ascent — one of the
    // "other problems" the paper says these methods solve (§I).
    let svm_problem = RidgeProblem::from_labelled(&train, 1e-2).expect("valid problem");
    let mut svm = SdcaSvm::new(&svm_problem, 1);
    for _ in 0..40 {
        svm.epoch(&svm_problem);
    }
    println!(
        "\nSVM (SDCA, 40 epochs): duality gap {:.1e}",
        svm.duality_gap(&svm_problem)
    );
    println!(
        "  train accuracy {:.1}%, test accuracy {:.1}%",
        100.0 * accuracy(svm.weights(), &train),
        100.0 * accuracy(svm.weights(), &test)
    );

    let test_acc = accuracy(&ridge_beta, &test);
    assert!(test_acc > 0.7, "spam filter should generalize, got {test_acc}");
}
